"""Message-plane batching: many logical messages, one physical frame.

Every broadcast a node emits within one activation (one ``receive`` or
timer callback) is deferred and coalesced into a single
:class:`~repro.multishot.messages.VoteBatch` envelope.  In the good
case that folds the leader's proposal into the same frame as its own
implicit vote (proposal piggybacking) and collapses the per-Δ vote
storm from O(n²) frames to O(n) — the dominant cost term in the
Algorand-style message-volume accounting the bench layer records.

The batching is *semantics-free* by construction:

* Only **consecutive** ``broadcast()`` calls are merged.  A ``send()``
  or ``set_timer()`` call flushes the buffer first, so every scheduler
  sequence number that is not a merged broadcast lands exactly where
  the unbatched path would put it.
* Merged broadcasts are delivered at the same simulated times as their
  unbatched counterparts, and receivers unbatch before dispatch
  (:func:`iter_logical`), preserving each receiver's per-timestamp
  arrival order.  All network delays are strictly positive, so no node
  can observe the (invisible) cross-receiver interleaving change.
* A buffer holding a single message flushes as the bare message — the
  physical traffic is byte-identical to the unbatched path whenever
  there is nothing to merge.
* Timer callbacks are wrapped to flush after they fire, covering
  timer-driven activations generically; ``start`` and ``receive``
  flush explicitly at activation end.

``REPRO_NO_BATCH=1`` disables batching process-wide (the A/B escape
hatch the ablation benches use); engines also accept an explicit
``batching=`` override for in-process A/B runs.

Note on randomized delay policies: batching reduces the number of
``DelayPolicy.delay`` calls, so RNG-consuming policies draw a different
stream than an unbatched run.  Deterministic policies (synchronous,
targeted-drop, crash windows) produce byte-identical traces either
way, which is what the equivalence suite pins.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable

from repro.multishot.messages import VoteBatch

#: Upper bound on logical messages per envelope.  Batches above the cap
#: are chunked; in practice one activation emits a handful of
#: broadcasts, so the cap only guards pathological adversarial fan-out.
MAX_BATCH = 32


def batching_enabled() -> bool:
    """Whether the message plane batches broadcasts (default: yes).

    ``REPRO_NO_BATCH=1`` (or ``true``/``yes``) turns batching off for
    A/B comparisons without touching any call site.
    """
    return os.environ.get("REPRO_NO_BATCH", "").lower() not in ("1", "true", "yes")


def iter_logical(message: object) -> Iterable[object]:
    """The logical messages carried by one physical frame, in order."""
    if type(message) is VoteBatch:
        return message.messages
    return (message,)


class BatchingContext:
    """A :class:`~repro.sim.runner.NodeContext` wrapper that coalesces
    consecutive broadcasts into :class:`VoteBatch` envelopes.

    Forwards the full context surface; only ``broadcast`` defers work.
    """

    __slots__ = ("_inner", "_buffer")

    def __init__(self, inner) -> None:
        self._inner = inner
        self._buffer: list[object] = []

    # -- the batching surface --------------------------------------------------

    def broadcast(self, message: object) -> None:
        self._buffer.append(message)

    def send(self, dst: int, message: object) -> None:
        self.flush()
        self._inner.send(dst, message)

    def set_timer(self, delay: float, callback: Callable[[], None]):
        self.flush()

        def fire() -> None:
            callback()
            self.flush()

        return self._inner.set_timer(delay, fire)

    def flush(self) -> None:
        """Emit buffered broadcasts: bare when single, enveloped when many."""
        buffer = self._buffer
        if not buffer:
            return
        inner = self._inner
        if len(buffer) == 1:
            message = buffer[0]
            buffer.clear()
            inner.broadcast(message)
            return
        messages = tuple(buffer)
        buffer.clear()
        for start in range(0, len(messages), MAX_BATCH):
            chunk = messages[start : start + MAX_BATCH]
            inner.broadcast(chunk[0] if len(chunk) == 1 else VoteBatch(chunk))

    # -- plain forwarding ------------------------------------------------------

    @property
    def node_id(self):
        return self._inner.node_id

    @property
    def now(self):
        return self._inner.now

    def report_decision(self, value: object) -> None:
        self._inner.report_decision(value)

    def report_view_entry(self, view: int) -> None:
        self._inner.report_view_entry(view)

    def report_storage(self, size_bytes: int) -> None:
        self._inner.report_storage(size_bytes)

    def trace(self, kind, **detail) -> None:
        self._inner.trace(kind, **detail)
