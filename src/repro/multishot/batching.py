"""Message-plane batching: many logical messages, one physical frame.

Every broadcast a node emits within one activation (one ``receive`` or
timer callback) is deferred and coalesced into a single
:class:`~repro.multishot.messages.VoteBatch` envelope.  In the good
case that folds the leader's proposal into the same frame as its own
implicit vote (proposal piggybacking) and collapses the per-Δ vote
storm from O(n²) frames to O(n) — the dominant cost term in the
Algorand-style message-volume accounting the bench layer records.

The batching is *semantics-free* by construction:

* Only **consecutive** ``broadcast()`` calls are merged.  A ``send()``
  or ``set_timer()`` call flushes the buffer first, so every scheduler
  sequence number that is not a merged broadcast lands exactly where
  the unbatched path would put it.
* Merged broadcasts are delivered at the same simulated times as their
  unbatched counterparts, and receivers unbatch before dispatch
  (:func:`iter_logical`), preserving each receiver's per-timestamp
  arrival order.  All network delays are strictly positive, so no node
  can observe the (invisible) cross-receiver interleaving change.
* A buffer holding a single message flushes as the bare message — the
  physical traffic is byte-identical to the unbatched path whenever
  there is nothing to merge.
* Timer callbacks are wrapped to flush after they fire, covering
  timer-driven activations generically; ``start`` and ``receive``
  flush explicitly at activation end.

How large one envelope may grow is a *policy*, not a constant.  The
default is :class:`AdaptiveBatchPolicy` — a small deterministic
controller (additive-increase / halving-decrease inside a hysteresis
band) that sizes the chunk cap to the observed per-activation queue
depth: sustained full flushes widen the cap toward ``hi``, sustained
near-empty flushes shrink it toward ``lo``, and anything inside the
band leaves it alone.  :class:`FixedBatchPolicy` (``fixed(n)``)
reproduces the historical constant cap exactly.  Selection is per
process via ``REPRO_BATCH_POLICY`` (``adaptive`` — the default —
``fixed`` or ``fixed:<n>``); every policy is semantics-free — it only
decides how many logical messages share a physical frame, never what
or when anything is delivered.

``REPRO_NO_BATCH=1`` disables batching process-wide (the A/B escape
hatch the ablation benches use); engines also accept an explicit
``batching=`` override for in-process A/B runs.

Note on randomized delay policies: batching reduces the number of
``DelayPolicy.delay`` calls, so RNG-consuming policies draw a different
stream than an unbatched run.  Deterministic policies (synchronous,
targeted-drop, crash windows) produce byte-identical traces either
way, which is what the equivalence suite pins.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.config import repro_config
from repro.errors import ConfigurationError
from repro.multishot.messages import VoteBatch

#: The historical fixed chunk cap (PR 6's ``MAX_BATCH``): the constant
#: :class:`FixedBatchPolicy` defaults to, and the starting point of the
#: adaptive controller.  In practice one activation emits a handful of
#: broadcasts, so the cap mostly guards pathological adversarial
#: fan-out — which is exactly why a load-adaptive policy can shrink it
#: on quiet links and grow it under pressure without changing
#: semantics.
MAX_BATCH = 32


class FixedBatchPolicy:
    """The constant chunk cap: today's ``MAX_BATCH`` behavior, pinned.

    ``observe`` is a no-op — the limit never moves — which makes this
    policy the byte-exact reference arm of every batching ablation.
    """

    __slots__ = ("_limit",)

    def __init__(self, limit: int = MAX_BATCH) -> None:
        if limit < 1:
            raise ConfigurationError(f"batch limit must be >= 1, got {limit}")
        self._limit = limit

    @property
    def limit(self) -> int:
        return self._limit

    def observe(self, occupancy: int) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedBatchPolicy({self._limit})"


class AdaptiveBatchPolicy:
    """Deterministic load-adaptive chunk cap: AIMD inside a hysteresis band.

    The controller is a pure function of its observation sequence (no
    clocks, no randomness — the same observations always produce the
    same limit sequence, which is what keeps adaptive batching
    replayable and auditable):

    * ``observe(occupancy)`` is called once per flush with how many
      units (messages, frames, transactions — the caller's currency)
      that flush carried;
    * occupancy at or above ``hi_band`` of the current limit (and at
      least 2 — a singleton flush is never growth pressure) **doubles**
      the limit, clamped to ``hi``;
    * occupancy below ``lo_band`` of the limit for ``patience``
      consecutive flushes **halves** it, clamped to ``lo``;
    * anything inside the band leaves the limit untouched — the
      hysteresis gap (growth lands the limit where the same occupancy
      sits above ``lo_band``) is what prevents oscillation on flat
      load.
    """

    __slots__ = ("lo", "hi", "hi_band", "lo_band", "patience", "_limit", "_lows")

    def __init__(
        self,
        lo: int = 1,
        hi: int = 256,
        start: int | None = None,
        hi_band: float = 0.75,
        lo_band: float = 0.25,
        patience: int = 3,
    ) -> None:
        if lo < 1:
            raise ConfigurationError(f"adaptive batch lo bound must be >= 1, got {lo}")
        if hi < lo:
            raise ConfigurationError(f"adaptive batch bounds need lo <= hi, got [{lo}, {hi}]")
        if not 0.0 < lo_band < hi_band <= 1.0:
            raise ConfigurationError(
                f"adaptive bands need 0 < lo_band < hi_band <= 1, got [{lo_band}, {hi_band}]"
            )
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        self.lo = lo
        self.hi = hi
        self.hi_band = hi_band
        self.lo_band = lo_band
        self.patience = patience
        start = lo if start is None else start
        self._limit = min(max(start, lo), hi)
        self._lows = 0

    @property
    def limit(self) -> int:
        return self._limit

    def observe(self, occupancy: int) -> None:
        limit = self._limit
        if occupancy >= 2 and occupancy >= limit * self.hi_band:
            self._limit = min(limit * 2, self.hi)
            self._lows = 0
        elif occupancy < limit * self.lo_band:
            self._lows += 1
            if self._lows >= self.patience:
                self._limit = max(limit // 2, self.lo)
                self._lows = 0
        else:
            self._lows = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdaptiveBatchPolicy(limit={self._limit}, lo={self.lo}, hi={self.hi})"


#: Bounds of the message-plane adaptive policy: the cap may shrink to
#: the historical constant's quarter on quiet links and grow to 256
#: logical messages per envelope under adversarial fan-out pressure.
ADAPTIVE_LO = 8
ADAPTIVE_HI = 256


def batch_policy_from_env() -> FixedBatchPolicy | AdaptiveBatchPolicy:
    """The chunk-cap policy ``REPRO_BATCH_POLICY`` selects.

    * unset / ``adaptive`` — :class:`AdaptiveBatchPolicy` seeded at the
      historical constant;
    * ``fixed`` — :class:`FixedBatchPolicy` at ``MAX_BATCH`` (PR 6's
      exact behavior);
    * ``fixed:<n>`` — :class:`FixedBatchPolicy` at ``n``.
    """
    raw = repro_config().batch_policy.strip().lower()
    if raw in ("", "adaptive"):
        return AdaptiveBatchPolicy(lo=ADAPTIVE_LO, hi=ADAPTIVE_HI, start=MAX_BATCH)
    if raw == "fixed":
        return FixedBatchPolicy(MAX_BATCH)
    if raw.startswith("fixed:"):
        try:
            limit = int(raw.split(":", 1)[1])
        except ValueError:
            raise ConfigurationError(
                f"REPRO_BATCH_POLICY={raw!r}: fixed:<n> needs an integer"
            ) from None
        return FixedBatchPolicy(limit)
    raise ConfigurationError(
        f"unknown REPRO_BATCH_POLICY {raw!r}; known: adaptive, fixed, fixed:<n>"
    )


def batching_enabled() -> bool:
    """Whether the message plane batches broadcasts (default: yes).

    ``REPRO_NO_BATCH=1`` (or ``true``/``yes``) turns batching off for
    A/B comparisons without touching any call site.
    """
    return not repro_config().no_batch


def iter_logical(message: object) -> Iterable[object]:
    """The logical messages carried by one physical frame, in order."""
    if type(message) is VoteBatch:
        return message.messages
    return (message,)


class BatchingContext:
    """A :class:`~repro.sim.runner.NodeContext` wrapper that coalesces
    consecutive broadcasts into :class:`VoteBatch` envelopes.

    Forwards the full context surface; only ``broadcast`` defers work.
    ``policy`` sets the chunk cap (``None`` consults
    ``REPRO_BATCH_POLICY``); the policy observes each flush's occupancy
    so an adaptive cap tracks the per-activation queue depth.
    """

    __slots__ = ("_inner", "_buffer", "_policy")

    def __init__(self, inner, policy=None) -> None:
        self._inner = inner
        self._buffer: list[object] = []
        self._policy = policy if policy is not None else batch_policy_from_env()

    @property
    def policy(self):
        return self._policy

    # -- the batching surface --------------------------------------------------

    def broadcast(self, message: object) -> None:
        self._buffer.append(message)

    def send(self, dst: int, message: object) -> None:
        self.flush()
        self._inner.send(dst, message)

    def set_timer(self, delay: float, callback: Callable[[], None]):
        self.flush()

        def fire() -> None:
            callback()
            self.flush()

        return self._inner.set_timer(delay, fire)

    def flush(self) -> None:
        """Emit buffered broadcasts: bare when single, enveloped when many."""
        buffer = self._buffer
        if not buffer:
            return
        inner = self._inner
        if len(buffer) == 1:
            message = buffer[0]
            buffer.clear()
            inner.broadcast(message)
            self._policy.observe(1)
            return
        messages = tuple(buffer)
        buffer.clear()
        limit = self._policy.limit
        for start in range(0, len(messages), limit):
            chunk = messages[start : start + limit]
            inner.broadcast(chunk[0] if len(chunk) == 1 else VoteBatch(chunk))
        self._policy.observe(len(messages))

    # -- plain forwarding ------------------------------------------------------

    @property
    def node_id(self):
        return self._inner.node_id

    @property
    def now(self):
        return self._inner.now

    def report_decision(self, value: object) -> None:
        self._inner.report_decision(value)

    def report_view_entry(self, view: int) -> None:
        self._inner.report_view_entry(view)

    def report_storage(self, size_bytes: int) -> None:
        self._inner.report_storage(size_bytes)

    def trace(self, kind, **detail) -> None:
        self._inner.trace(kind, **detail)
