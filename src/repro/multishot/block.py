"""Blocks and hash-pointer chains for Multi-shot TetraBFT (Section 6).

Blocks carry a slot number and a pointer to their parent, "linked
sequentially via hash pointers, collectively forming a chain" (§2).
The digest is a content hash over (slot, parent digest, payload); it is
*not* a cryptographic commitment — the protocol model is
unauthenticated and nothing relies on collision resistance — it is the
chain-linking identifier the paper's chain structure needs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

Digest = str

#: The digest every chain starts from (slot 0 is the implicit genesis).
GENESIS_DIGEST: Digest = "genesis"
GENESIS_SLOT = 0


def _compute_digest(slot: int, parent: Digest, payload: object) -> Digest:
    material = f"{slot}|{parent}|{payload!r}".encode()
    return hashlib.sha256(material).hexdigest()[:16]


@dataclass(frozen=True)
class Block:
    """One block: ``slot``, parent hash pointer, and transaction payload."""

    slot: int
    parent: Digest
    payload: object
    digest: Digest = field(default="")

    def __post_init__(self) -> None:
        if not self.digest:
            object.__setattr__(
                self, "digest", _compute_digest(self.slot, self.parent, self.payload)
            )

    @classmethod
    def create(cls, slot: int, parent: Digest, payload: object) -> "Block":
        return cls(slot=slot, parent=parent, payload=payload)

    def wire_size(self) -> int:
        """Slot + two digests + a payload reference (constant here; the
        SMR layer's payloads dominate in practice)."""
        payload_size = len(repr(self.payload))
        return 8 + 2 * 16 + payload_size


class BlockStore:
    """Blocks a node has seen, indexed by digest, with ancestry queries.

    Bounded in practice by the finalization window plus the finalized
    chain; :meth:`prune_below` lets the node discard block bodies for
    slots below the active window once their chain is finalized.
    """

    def __init__(self) -> None:
        self._by_digest: dict[Digest, Block] = {}

    def add(self, block: Block) -> None:
        self._by_digest[block.digest] = block

    def get(self, digest: Digest) -> Block | None:
        return self._by_digest.get(digest)

    def __contains__(self, digest: Digest) -> bool:
        return digest in self._by_digest

    def __len__(self) -> int:
        return len(self._by_digest)

    def ancestor_digest(self, digest: Digest, generations: int) -> Digest | None:
        """Digest of the ``generations``-th ancestor of ``digest``.

        Returns ``GENESIS_DIGEST`` when walking past the chain start and
        ``None`` when an intermediate block body is unknown (the caller
        then cannot interpret the vote yet and must wait).
        """
        current = digest
        for _ in range(generations):
            if current == GENESIS_DIGEST:
                return GENESIS_DIGEST
            block = self._by_digest.get(current)
            if block is None:
                return None
            current = block.parent
        return current

    def chain_to_genesis(self, digest: Digest) -> list[Block] | None:
        """The block chain ending at ``digest``, oldest first.

        ``None`` when some ancestor body is missing.
        """
        chain: list[Block] = []
        current = digest
        while current != GENESIS_DIGEST:
            block = self._by_digest.get(current)
            if block is None:
                return None
            chain.append(block)
            current = block.parent
        chain.reverse()
        return chain

    def prune_below(self, slot: int, keep: set[Digest]) -> None:
        """Drop block bodies for slots below ``slot`` except ``keep``."""
        victims = [d for d, b in self._by_digest.items() if b.slot < slot and d not in keep]
        for digest in victims:
            del self._by_digest[digest]
