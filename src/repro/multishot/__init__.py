"""Multi-shot (pipelined) TetraBFT: blocks, chain, node (paper Section 6)."""

from repro.multishot.batching import (
    MAX_BATCH,
    AdaptiveBatchPolicy,
    BatchingContext,
    FixedBatchPolicy,
    batch_policy_from_env,
    batching_enabled,
    iter_logical,
)
from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore, Digest
from repro.multishot.chain import FINALITY_WINDOW, ChainState
from repro.multishot.messages import (
    MSProof,
    MSProposal,
    MSSuggest,
    MSViewChange,
    MSVote,
    MultiShotMessage,
    VoteBatch,
)
from repro.multishot.node import (
    RETENTION_SLOTS,
    MultiShotConfig,
    MultiShotNode,
    default_payload,
)

__all__ = [
    "AdaptiveBatchPolicy",
    "BatchingContext",
    "Block",
    "BlockStore",
    "ChainState",
    "Digest",
    "FINALITY_WINDOW",
    "FixedBatchPolicy",
    "GENESIS_DIGEST",
    "MAX_BATCH",
    "MSProof",
    "MSProposal",
    "MSSuggest",
    "MSViewChange",
    "MSVote",
    "MultiShotConfig",
    "MultiShotMessage",
    "MultiShotNode",
    "RETENTION_SLOTS",
    "VoteBatch",
    "batch_policy_from_env",
    "batching_enabled",
    "default_payload",
    "iter_logical",
]
