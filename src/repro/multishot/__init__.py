"""Multi-shot (pipelined) TetraBFT: blocks, chain, node (paper Section 6)."""

from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore, Digest
from repro.multishot.chain import FINALITY_WINDOW, ChainState
from repro.multishot.messages import (
    MSProof,
    MSProposal,
    MSSuggest,
    MSViewChange,
    MSVote,
    MultiShotMessage,
)
from repro.multishot.node import (
    RETENTION_SLOTS,
    MultiShotConfig,
    MultiShotNode,
    default_payload,
)

__all__ = [
    "Block",
    "BlockStore",
    "ChainState",
    "Digest",
    "FINALITY_WINDOW",
    "GENESIS_DIGEST",
    "MSProof",
    "MSProposal",
    "MSSuggest",
    "MSViewChange",
    "MSVote",
    "MultiShotConfig",
    "MultiShotMessage",
    "MultiShotNode",
    "RETENTION_SLOTS",
    "default_payload",
]
