"""Notarization and finalization bookkeeping (paper Section 6.1).

    "A block is notarized on receiving votes from a quorum of nodes.
    The first block in a chain of four notarized blocks with
    consecutive slot numbers is finalized, as well as its entire
    prefix in the chain."

:class:`ChainState` tracks which (slot, digest) pairs are notarized and
derives the finalized chain.  Finalization is *chain-linked*: the four
consecutive notarized blocks must actually extend one another (their
views need not match — Fig. 3 finalizes slot 1 of view 1 through slot 4
of view 0), which is what makes a vote for a block an implicit
endorsement of its ancestors.

The bookkeeping is incremental so the per-vote cost stays flat as the
chain grows:

* a **finalized-slot index** (slot → digest) answers "is this slot's
  finalized digest d?" in O(1) instead of scanning the finalized list;
* a **notarization frontier** bounds the finalization scan: only runs
  whose top slot lies in ``[finalized_height + FINALITY_WINDOW - 1,
  max notarized slot]`` can change anything, so each
  :meth:`check_finalization` walks that window instead of re-sorting
  every notarized slot ever seen;
* finalizing appends the new *suffix* to the finalized list instead of
  rebuilding the whole chain from genesis on every finalization.
"""

from __future__ import annotations

from repro.errors import ProtocolViolation
from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore, Digest

#: Blocks needed in a notarized run before the first one finalizes.
FINALITY_WINDOW = 4


class ChainState:
    """Per-node notarization ledger and finalized-chain tracker."""

    def __init__(self, store: BlockStore) -> None:
        self.store = store
        self._notarized: dict[int, set[Digest]] = {}
        self.finalized: list[Block] = []
        # Finalized-slot index: slot → digest of the finalized block.
        self._finalized_at: dict[int, Digest] = {}
        # Notarization frontier bound: the highest slot ever notarized.
        self._max_notarized = 0

    # -- notarization ------------------------------------------------------------

    def notarize(self, slot: int, digest: Digest) -> list[Block]:
        """Record a notarization; return any *newly* finalized blocks."""
        self._notarized.setdefault(slot, set()).add(digest)
        if slot > self._max_notarized:
            self._max_notarized = slot
        return self.check_finalization()

    def is_notarized(self, slot: int, digest: Digest) -> bool:
        if slot <= 0:
            return digest == GENESIS_DIGEST or self._finalized_at.get(slot) == digest
        if digest in self._notarized.get(slot, ()):
            return True
        # Finalized blocks are a fortiori notarized.
        return self._finalized_at.get(slot) == digest

    def notarized_digests(self, slot: int) -> set[Digest]:
        return set(self._notarized.get(slot, set()))

    @property
    def finalized_height(self) -> int:
        return self.finalized[-1].slot if self.finalized else 0

    def finalized_digest_at(self, slot: int) -> Digest | None:
        """Digest finalized at ``slot``, or ``None`` (O(1) index hit)."""
        return self._finalized_at.get(slot)

    def bootstrap(self, blocks: tuple[Block, ...] | list[Block]) -> None:
        """Install an already-finalized prefix (recovery from storage).

        ``blocks`` must be a hash-linked chain starting at slot 1 —
        recovery validated linkage and digests before trusting disk, and
        this re-checks it because a malformed bootstrap would poison
        every later fork check.  Only an empty (fresh) chain may be
        bootstrapped: this rebuilds history, it does not merge it.
        """
        if self.finalized or self._notarized:
            raise ProtocolViolation("bootstrap on a non-empty chain state")
        parent = GENESIS_DIGEST
        for i, block in enumerate(blocks):
            if block.slot != i + 1 or block.parent != parent:
                raise ProtocolViolation(
                    f"bootstrap chain broken at slot {block.slot} "
                    f"(expected slot {i + 1} extending {parent})"
                )
            parent = block.digest
        self.finalized = list(blocks)
        for block in blocks:
            self._finalized_at[block.slot] = block.digest
        if self.finalized_height > self._max_notarized:
            self._max_notarized = self.finalized_height

    def prune_below(self, slot: int) -> None:
        """Drop notarization sets for slots below ``slot``.

        Called by the node alongside its per-slot state pruning: slots
        that far behind the finalized tip answer notarization queries
        from the finalized-slot index alone (their non-finalized
        notarized digests are dead lineages that can never finalize —
        any run through them would fork the finalized prefix and the
        fork check fires long before the pruning horizon).
        """
        stale = [s for s in self._notarized if s < slot]
        for s in stale:
            del self._notarized[s]

    # -- finalization ------------------------------------------------------------

    def check_finalization(self) -> list[Block]:
        """Scan the frontier for 4 consecutive chain-linked notarized slots.

        Called after every notarization and after every late block-body
        arrival (a notarized digest whose ancestors' bodies were missing
        cannot finalize until the bodies show up).  Only top slots from
        ``finalized_height + FINALITY_WINDOW - 1`` (the lowest run that
        can still finalize a new block — or re-finalize the tip slot,
        which is how conflicting runs reach the fork check) up to the
        highest notarized slot are candidates, so the scan is O(window)
        in steady state rather than O(chain).  Returns the blocks
        appended to the finalized chain, oldest first.
        """
        newly: list[Block] = []
        progress = True
        while progress:
            progress = False
            frontier = self.finalized_height + FINALITY_WINDOW - 1
            for top_slot in range(frontier, self._max_notarized + 1):
                digests = self._notarized.get(top_slot)
                if not digests:
                    continue
                for top_digest in digests:
                    appended = self._try_finalize_run(top_slot, top_digest)
                    if appended:
                        newly.extend(appended)
                        progress = True
                        break
                if progress:
                    break
        return newly

    def _try_finalize_run(self, top_slot: int, top_digest: Digest) -> list[Block]:
        """Finalize the block 3 generations under ``top`` if the run holds."""
        current = top_digest
        for depth in range(FINALITY_WINDOW - 1):
            block = self.store.get(current)
            if block is None:
                return []  # body missing; retry when it arrives
            parent_slot = top_slot - depth - 1
            if parent_slot <= 0:
                if block.parent != GENESIS_DIGEST:
                    return []
                # A run reaching genesis: fewer than 4 real blocks exist,
                # so nothing below the window can finalize yet.
                return []
            if not self.is_notarized(parent_slot, block.parent):
                return []
            current = block.parent
        return self._finalize_chain_to(current)

    def _finalize_chain_to(self, digest: Digest) -> list[Block]:
        """Append the chain suffix ending at ``digest`` to the finalized list.

        The walk follows parent pointers only until it meets the current
        finalized tip (or genesis), so finalizing one more block costs
        O(new suffix), not O(chain).  Meeting the tip digest proves the
        whole prefix matches — digests are content hashes over the
        parent pointer, so equal tip digests imply equal ancestries.  A
        walk that reaches genesis *without* passing through the tip is
        either a stale shorter run (ignored) or a protocol-level fork
        (raised), distinguished by a full prefix comparison.
        """
        tip_digest = self.finalized[-1].digest if self.finalized else GENESIS_DIGEST
        suffix: list[Block] = []
        current = digest
        while current != tip_digest and current != GENESIS_DIGEST:
            block = self.store.get(current)
            if block is None:
                return []
            suffix.append(block)
            current = block.parent
        if current != tip_digest:
            # Reached genesis on a chain that does not extend the tip.
            return self._check_conflicting_chain(digest)
        suffix.reverse()
        if suffix and suffix[-1].slot <= self.finalized_height:
            return []
        self.finalized.extend(suffix)
        for block in suffix:
            self._finalized_at[block.slot] = block.digest
        return suffix

    def _check_conflicting_chain(self, digest: Digest) -> list[Block]:
        """Fork check for a finalizable chain that bypasses the tip.

        Any finalizable chain must agree with what we already finalized,
        even one that does not extend it — a conflicting run at
        already-final slots is a protocol-level fork and must never be
        silently ignored.  A consistent-but-shorter chain (a stale run
        entirely inside the finalized prefix) finalizes nothing.
        """
        chain = self.store.chain_to_genesis(digest)
        if chain is None:
            return []
        for old, new in zip(self.finalized, chain):
            if old.digest != new.digest:
                raise ProtocolViolation(
                    f"finalized-chain fork at slot {old.slot}: "
                    f"{old.digest} vs {new.digest}"
                )
        return []
