"""Notarization and finalization bookkeeping (paper Section 6.1).

    "A block is notarized on receiving votes from a quorum of nodes.
    The first block in a chain of four notarized blocks with
    consecutive slot numbers is finalized, as well as its entire
    prefix in the chain."

:class:`ChainState` tracks which (slot, digest) pairs are notarized and
derives the finalized chain.  Finalization is *chain-linked*: the four
consecutive notarized blocks must actually extend one another (their
views need not match — Fig. 3 finalizes slot 1 of view 1 through slot 4
of view 0), which is what makes a vote for a block an implicit
endorsement of its ancestors.
"""

from __future__ import annotations

from repro.errors import ProtocolViolation
from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore, Digest

#: Blocks needed in a notarized run before the first one finalizes.
FINALITY_WINDOW = 4


class ChainState:
    """Per-node notarization ledger and finalized-chain tracker."""

    def __init__(self, store: BlockStore) -> None:
        self.store = store
        self._notarized: dict[int, set[Digest]] = {}
        self.finalized: list[Block] = []

    # -- notarization ------------------------------------------------------------

    def notarize(self, slot: int, digest: Digest) -> list[Block]:
        """Record a notarization; return any *newly* finalized blocks."""
        self._notarized.setdefault(slot, set()).add(digest)
        return self.check_finalization()

    def is_notarized(self, slot: int, digest: Digest) -> bool:
        if slot <= 0:
            return digest == GENESIS_DIGEST or self._tail_digest_at(slot) == digest
        if digest in self._notarized.get(slot, set()):
            return True
        # Finalized blocks are a fortiori notarized.
        return self._tail_digest_at(slot) == digest

    def _tail_digest_at(self, slot: int) -> Digest | None:
        for block in self.finalized:
            if block.slot == slot:
                return block.digest
        return None

    def notarized_digests(self, slot: int) -> set[Digest]:
        return set(self._notarized.get(slot, set()))

    @property
    def finalized_height(self) -> int:
        return self.finalized[-1].slot if self.finalized else 0

    # -- finalization ------------------------------------------------------------

    def check_finalization(self) -> list[Block]:
        """Scan for 4 consecutive chain-linked notarized slots.

        Called after every notarization and after every late block-body
        arrival (a notarized digest whose ancestors' bodies were missing
        cannot finalize until the bodies show up).  Returns the blocks
        appended to the finalized chain, oldest first.
        """
        newly: list[Block] = []
        progress = True
        while progress:
            progress = False
            for top_slot in sorted(self._notarized):
                # Runs ending at or below the finalized tip still go
                # through _try_finalize_run: they cannot extend the
                # chain, but a *conflicting* one must hit the fork
                # check rather than be silently skipped.
                if top_slot - (FINALITY_WINDOW - 1) < self.finalized_height:
                    continue
                for top_digest in self._notarized[top_slot]:
                    appended = self._try_finalize_run(top_slot, top_digest)
                    if appended:
                        newly.extend(appended)
                        progress = True
                        break
                if progress:
                    break
        return newly

    def _try_finalize_run(self, top_slot: int, top_digest: Digest) -> list[Block]:
        """Finalize the block 3 generations under ``top`` if the run holds."""
        current = top_digest
        for depth in range(FINALITY_WINDOW - 1):
            block = self.store.get(current)
            if block is None:
                return []  # body missing; retry when it arrives
            parent_slot = top_slot - depth - 1
            if parent_slot <= 0:
                if block.parent != GENESIS_DIGEST:
                    return []
                # A run reaching genesis: fewer than 4 real blocks exist,
                # so nothing below the window can finalize yet.
                return []
            if not self.is_notarized(parent_slot, block.parent):
                return []
            current = block.parent
        return self._finalize_chain_to(current)

    def _finalize_chain_to(self, digest: Digest) -> list[Block]:
        chain = self.store.chain_to_genesis(digest)
        if chain is None:
            return []
        # Consistency first: any finalizable chain must agree with what
        # we already finalized, even one that does not extend it — a
        # conflicting run at already-final slots is a protocol-level
        # fork and must never be silently ignored.
        for old, new in zip(self.finalized, chain):
            if old.digest != new.digest:
                raise ProtocolViolation(
                    f"finalized-chain fork at slot {old.slot}: "
                    f"{old.digest} vs {new.digest}"
                )
        if chain and chain[-1].slot <= self.finalized_height:
            return []
        newly = chain[len(self.finalized):]
        self.finalized = chain
        return newly
