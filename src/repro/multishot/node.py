"""The Multi-shot (pipelined) TetraBFT node (paper Section 6).

One vote message per slot drives four overlapping single-shot
instances: ``⟨vote, slot s, view v, value⟩`` is simultaneously vote-1
for slot ``s``, vote-2 for ``s-1``, vote-3 for ``s-2`` and vote-4 for
``s-3`` (values being the corresponding chain ancestors).  In the good
case the protocol therefore commits one block per message delay using
only two message types — proposals and votes — and the view-change
machinery (Algorithms 2 and 3) exists purely to recover from a faulty
leader or asynchrony.

Protocol flow implemented here:

* **Good case (§6.1).**  The leader of slot ``s`` proposes a block
  extending slot ``s-1``'s the moment it has seen ``b_{s-1}`` with a
  notarized parent; the proposal doubles as the leader's implicit vote.
  A node votes for ``b_s`` once (a) the value is safe in the slot's
  current view (trivially at view 0, Rule 3 otherwise) and (b)
  ``b_{s-1}`` is notarized.  A quorum of votes notarizes; four
  consecutive chain-linked notarized slots finalize the first and its
  prefix (:mod:`repro.multishot.chain`).
* **View change (§6.2).**  Each slot has a 9Δ timer from its start; on
  expiry without finalization the node broadcasts
  ``⟨view-change, slot, v+1⟩``.  f+1 of those are echoed; a quorum
  moves every non-finalized slot ≥ the named slot into the new view,
  resets timers, and broadcasts per-slot suggest/proof messages so the
  new leaders can find safe values (Rules 1–4, unchanged from
  single-shot).  Slots never previously started still begin at view 0,
  exactly as slot 4 does in the paper's Fig. 3.

:class:`MultiShotNode` is also the **reference implementation** of the
SMR layer's :class:`~repro.smr.engine.ConsensusEngine` boundary: it
satisfies the protocol structurally (``start``/``receive``/``store``/
``finalized_chain`` plus the constructor's payload and finalization
hooks), and :func:`repro.smr.engine.multishot_engine` wires it behind a
:class:`~repro.smr.replica.Replica` byte-for-byte as the replica used
to construct it directly.

Documented deviation: when recording the ancestor phases of a vote
into the per-slot :class:`VoteStorage`, a record that would *decrease*
a phase's view (possible only when lineages from different views
interleave, e.g. a view-0 vote whose ancestor slot already progressed
to view 1) is skipped rather than stored.  Claims in suggest/proof
messages remain true statements about our highest votes — under-
reporting can only make Rules 1/3 more conservative, never admit an
unsafe value.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.config import ProtocolConfig
from repro.core.messages import Proof, Suggest
from repro.core.rules import find_safe_value, proposal_is_safe
from repro.core.storage import VoteStorage
from repro.core.values import Phase
from repro.errors import ConfigurationError
from repro.multishot.batching import BatchingContext, batching_enabled
from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore, Digest
from repro.multishot.chain import FINALITY_WINDOW, ChainState
from repro.multishot.messages import (
    MSProof,
    MSProposal,
    MSSuggest,
    MSViewChange,
    MSVote,
    VoteBatch,
)
from repro.quorums.system import NodeId
from repro.sim.events import EventHandle
from repro.sim.runner import NodeContext, SimNode
from repro.sim.trace import TraceKind

#: Payload factory: (slot, parent digest) → block payload.  The parent
#: digest lets SMR proposers skip transactions already in flight on the
#: lineage they extend.
PayloadFn = Callable[[int, Digest], object]
FinalizeCallback = Callable[[Block], None]

#: How many slots of per-slot working state to retain behind the
#: finalized tip.  5 covers the paper's maximum abort window.
RETENTION_SLOTS = 8


def default_payload(slot: int, parent: Digest) -> object:
    del parent
    return f"block-payload-{slot}"


@dataclass(frozen=True)
class MultiShotConfig:
    """Parameters of a Multi-shot TetraBFT deployment.

    ``base`` supplies the quorum system, Δ and timeout; ``max_slots``
    bounds how far leaders extend the chain (simulations are finite —
    the tail ``FINALITY_WINDOW - 1`` blocks of a run can never
    finalize, as in any streamlet-style chain).  The leader of
    ``(slot, view)`` is round-robin over ``slot + view`` so that a
    view change within a slot rotates to a different leader.
    """

    base: ProtocolConfig
    max_slots: int = 20

    def __post_init__(self) -> None:
        if self.max_slots < 1:
            raise ConfigurationError(f"max_slots must be >= 1, got {self.max_slots}")

    def leader_of(self, slot: int, view: int) -> NodeId:
        ids = self.base.node_ids
        return ids[(slot + view) % len(ids)]

    @property
    def quorum_system(self):
        return self.base.quorum_system


@dataclass
class _SlotState:
    """Mutable per-slot bookkeeping (bounded by RETENTION_SLOTS)."""

    view: int = 0
    started: bool = False
    timer: EventHandle | None = None
    voted_views: set[int] = field(default_factory=set)
    proposed_views: set[int] = field(default_factory=set)
    # proposals / votes / proofs / suggests keyed by view.
    proposals: dict[int, MSProposal] = field(default_factory=dict)
    votes: dict[tuple[int, Digest], set[NodeId]] = field(default_factory=dict)
    proofs: dict[int, dict[NodeId, MSProof]] = field(default_factory=dict)
    suggests: dict[int, dict[NodeId, MSSuggest]] = field(default_factory=dict)
    vc_senders: dict[int, set[NodeId]] = field(default_factory=dict)
    vc_sent: int = 0
    storage: VoteStorage = field(default_factory=VoteStorage)
    notarized_by_view: dict[int, Digest] = field(default_factory=dict)


class MultiShotNode(SimNode):
    """A well-behaved Multi-shot TetraBFT participant."""

    def __init__(
        self,
        node_id: NodeId,
        config: MultiShotConfig,
        payload_fn: PayloadFn | None = None,
        on_finalize: FinalizeCallback | None = None,
        batching: bool | None = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.payload_fn = payload_fn if payload_fn is not None else default_payload
        self.on_finalize = on_finalize
        self.store = BlockStore()
        self.chain = ChainState(self.store)
        self.slots: dict[int, _SlotState] = {}
        self._ctx: NodeContext | None = None
        # None → consult the REPRO_NO_BATCH escape hatch at start().
        self._batching = batching
        self._batch_ctx: BatchingContext | None = None

    # -- helpers -------------------------------------------------------------------

    @property
    def ctx(self) -> NodeContext:
        assert self._ctx is not None, "node used before start()"
        return self._ctx

    @property
    def finalized_chain(self) -> list[Block]:
        return list(self.chain.finalized)

    def slot_state(self, slot: int) -> _SlotState:
        state = self.slots.get(slot)
        if state is None:
            state = _SlotState()
            self.slots[slot] = state
        return state

    def _qs(self):
        return self.config.quorum_system

    # -- lifecycle ------------------------------------------------------------------

    def start(self, ctx: NodeContext) -> None:
        if self._batching is None:
            self._batching = batching_enabled()
        if self._batching:
            self._batch_ctx = BatchingContext(ctx)
            ctx = self._batch_ctx
        self._ctx = ctx
        # A fresh node starts at slot 1; a node bootstrapped from a
        # recovered chain resumes at the first unfinalized slot.
        first = self.chain.finalized_height + 1
        self._start_slot(first)
        self._maybe_propose(first)
        if self._batch_ctx is not None:
            self._batch_ctx.flush()

    def bootstrap_finalized(self, blocks: tuple[Block, ...]) -> None:
        """Install a recovered finalized prefix before :meth:`start`.

        The blocks become chain history (bodies in the store, slots in
        the finalized index) without any votes, notarization messages,
        or finalize callbacks — the caller replays execution itself.
        Must run on a fresh, unstarted node; :meth:`start` then resumes
        consensus at the first unfinalized slot.
        """
        if self._ctx is not None:
            raise ConfigurationError("bootstrap_finalized must run before start()")
        for block in blocks:
            self.store.add(block)
        self.chain.bootstrap(blocks)

    def offer_bodies(self, blocks: tuple[Block, ...]) -> None:
        """Accept finalized block bodies fetched from a peer (catch-up).

        State transfer only supplies *bodies*; finalization is still
        proven by the live notarized run the node hears votes for — a
        gap below that run finalizes in one chain walk the moment every
        body in it is present (see ``ChainState._finalize_chain_to``),
        and each newly finalized block flows through the normal
        ``on_finalize`` callback.
        """
        added = False
        for block in blocks:
            if block.digest not in self.store:
                self.store.add(block)
                added = True
        if added:
            self._after_body_arrival()
            if self._batch_ctx is not None:
                self._batch_ctx.flush()

    def _start_slot(self, slot: int) -> None:
        if slot > self.config.max_slots:
            return
        state = self.slot_state(slot)
        if state.started:
            return
        state.started = True
        self._arm_timer(slot)
        self.ctx.trace(TraceKind.VIEW_ENTER, slot=slot, view=state.view)

    def _arm_timer(self, slot: int) -> None:
        state = self.slot_state(slot)
        if state.timer is not None:
            state.timer.cancel()
        state.timer = self.ctx.set_timer(
            self.config.base.view_timeout, lambda: self._on_timeout(slot)
        )

    def _on_timeout(self, slot: int) -> None:
        if self.chain.finalized_height >= slot:
            return  # finalized while the timer was in flight
        state = self.slot_state(slot)
        if not state.started:
            return
        self.ctx.trace(TraceKind.TIMER, slot=slot, view=state.view)
        next_view = max(state.view + 1, state.vc_sent)
        state.vc_sent = next_view
        self.ctx.broadcast(MSViewChange(slot, next_view))
        self._arm_timer(slot)

    # -- receive dispatch ---------------------------------------------------------------

    def receive(self, sender: NodeId, message: object) -> None:
        if type(message) is VoteBatch:
            for item in message.messages:
                self._dispatch(sender, item)
        else:
            self._dispatch(sender, message)
        if self._batch_ctx is not None:
            self._batch_ctx.flush()

    def _dispatch(self, sender: NodeId, message: object) -> None:
        if isinstance(message, MSProposal):
            self._on_proposal(sender, message)
        elif isinstance(message, MSVote):
            self._on_vote(sender, message)
        elif isinstance(message, MSViewChange):
            self._on_view_change(sender, message)
        elif isinstance(message, MSSuggest):
            self._on_suggest(sender, message)
        elif isinstance(message, MSProof):
            self._on_proof(sender, message)

    # -- proposals ------------------------------------------------------------------------

    def _on_proposal(self, sender: NodeId, message: MSProposal) -> None:
        slot, view, block = message.slot, message.view, message.block
        if slot < 1 or slot > self.config.max_slots:
            return
        if slot <= self.chain.finalized_height:
            # A proposal at or below our finalized tip is stale — a
            # restarted peer resuming from older disk state.  Entertain
            # it (our per-slot vote/proposal history there may already
            # be pruned) and we could help notarize a conflicting
            # lineage under the finalized chain; the rejoiner catches
            # up via state transfer instead.
            return
        if sender != self.config.leader_of(slot, view):
            return
        if block.slot != slot:
            return  # malformed: block claims a different slot
        state = self.slot_state(slot)
        if view not in state.proposals:
            state.proposals[view] = message
            self.store.add(block)
        # A proposal is the leader's implicit vote (§6.1).
        self._register_vote(sender, MSVote(slot, view, block.digest))
        # Receiving the proposal for slot s starts slot s+1 (Alg. 3).
        self._start_slot(slot + 1)
        self._maybe_vote(slot)
        self._maybe_propose(slot + 1)
        self._after_body_arrival()

    def _maybe_propose(self, slot: int) -> None:
        if slot < 1 or slot > self.config.max_slots:
            return
        state = self.slot_state(slot)
        view = state.view
        if self.config.leader_of(slot, view) != self.node_id:
            return
        if view in state.proposed_views:
            return
        parent = self._parent_for(slot, view)
        if parent is None:
            return
        if view == 0:
            block = Block.create(slot, parent, self.payload_fn(slot, parent))
        else:
            block = self._find_safe_block(slot, view, parent)
            if block is None:
                return
        state.proposed_views.add(view)
        self.store.add(block)
        self.ctx.trace(TraceKind.PROPOSE, slot=slot, view=view, value=block.digest)
        self._record_vote_phases(slot, view, block.digest)
        state.voted_views.add(view)
        self.ctx.broadcast(MSProposal(slot, view, block))

    def _parent_for(self, slot: int, view: int) -> Digest | None:
        """The digest the leader of ``(slot, view)`` should extend.

        The previous slot's *notarized* block from its highest view is
        the authoritative parent — once a quorum endorsed it, that is
        the lineage to build on even if the previous slot's current
        leader is faulty.  Failing that, the good-case §6.1 rule
        applies: extend the block proposed for ``slot - 1`` provided
        *its* parent is notarized (the leader's implicit-vote
        conditions).
        """
        del view
        if slot == 1:
            return GENESIS_DIGEST
        prev_state = self.slot_state(slot - 1)
        if prev_state.notarized_by_view:
            best_view = max(prev_state.notarized_by_view)
            return prev_state.notarized_by_view[best_view]
        # A bootstrapped node has no per-slot vote history for its
        # recovered prefix, but the finalized block *is* the notarized
        # parent to extend (fallback only: a live slot's own
        # notarizations always take precedence above).
        finalized = self.chain.finalized_digest_at(slot - 1)
        if finalized is not None:
            return finalized
        prev_proposal = prev_state.proposals.get(prev_state.view)
        if prev_proposal is None:
            return None
        prev_block = prev_proposal.block
        if slot - 2 >= 1 and not self.chain.is_notarized(slot - 2, prev_block.parent):
            return None
        if slot == 2 and prev_block.parent != GENESIS_DIGEST:
            return None
        return prev_block.digest

    def _find_safe_block(self, slot: int, view: int, fresh_parent: Digest) -> Block | None:
        """Rule 1 applied per slot: re-propose a forced value or mint fresh."""
        state = self.slot_state(slot)
        suggests = {
            node: Suggest(view, s.vote2, s.prev_vote2, s.vote3)
            for node, s in state.suggests.get(view, {}).items()
        }
        fresh = Block.create(slot, fresh_parent, self.payload_fn(slot, fresh_parent))
        value = find_safe_value(suggests, view, self._qs(), default_value=fresh.digest)
        if value is None:
            return None
        if value == fresh.digest:
            return fresh
        forced = self.store.get(str(value))
        if forced is None or forced.slot != slot:
            return None  # forced digest whose body we lack: wait
        return forced

    # -- voting --------------------------------------------------------------------------------

    def _maybe_vote(self, slot: int) -> None:
        state = self.slot_state(slot)
        view = state.view
        if view in state.voted_views:
            return
        proposal = state.proposals.get(view)
        if proposal is None:
            return
        block = proposal.block
        # Condition 1 (§6.1): the parent block is notarized.
        if slot >= 2 and not self.chain.is_notarized(slot - 1, block.parent):
            return
        if slot == 1 and block.parent != GENESIS_DIGEST:
            return
        # Condition 2: the value is safe in this slot's view (Rule 3).
        if view > 0:
            proofs = {
                node: Proof(view, p.vote1, p.prev_vote1, p.vote4)
                for node, p in state.proofs.get(view, {}).items()
            }
            if not proposal_is_safe(proofs, view, block.digest, self._qs()):
                return
        # We need the ancestor bodies to record the pipelined phases.
        if self.store.ancestor_digest(block.digest, FINALITY_WINDOW - 1) is None:
            return
        state.voted_views.add(view)
        self._record_vote_phases(slot, view, block.digest)
        self.ctx.trace(TraceKind.VOTE, slot=slot, view=view, value=block.digest)
        self.ctx.broadcast(MSVote(slot, view, block.digest))

    def _record_vote_phases(self, slot: int, view: int, digest: Digest) -> None:
        """Map one pipelined vote onto the four single-shot phases."""
        current: Digest | None = digest
        for offset, phase in enumerate((Phase.VOTE1, Phase.VOTE2, Phase.VOTE3, Phase.VOTE4)):
            target_slot = slot - offset
            if target_slot < 1 or current is None or current == GENESIS_DIGEST:
                break
            storage = self.slot_state(target_slot).storage
            existing = storage.highest_vote(phase)
            if existing.is_empty or view >= existing.view:
                storage.record_vote(phase, view, current)
            block = self.store.get(current)
            current = block.parent if block is not None else None
        self.ctx.report_storage(self._storage_bytes())

    def _storage_bytes(self) -> int:
        return sum(s.storage.size_bytes() for s in self.slots.values())

    def _on_vote(self, sender: NodeId, message: MSVote) -> None:
        if message.slot < 1:
            return
        self._register_vote(sender, message)

    def _register_vote(self, sender: NodeId, vote: MSVote) -> None:
        state = self.slot_state(vote.slot)
        key = (vote.view, vote.digest)
        supporters = state.votes.setdefault(key, set())
        if sender in supporters:
            return
        supporters.add(sender)
        if self._qs().is_quorum(supporters) and vote.view not in state.notarized_by_view:
            state.notarized_by_view[vote.view] = vote.digest
            self.ctx.trace(TraceKind.NOTARIZE, slot=vote.slot, view=vote.view, value=vote.digest)
            newly_final = self.chain.notarize(vote.slot, vote.digest)
            self._handle_finalized(newly_final)
            # A fresh notarization can unlock the next slot's vote and
            # the next-next leader's proposal.
            self._maybe_vote(vote.slot + 1)
            self._maybe_propose(vote.slot + 1)
            self._maybe_propose(vote.slot + 2)

    def _after_body_arrival(self) -> None:
        """A late block body can complete a pending finalization run."""
        self._handle_finalized(self.chain.check_finalization())

    def _handle_finalized(self, blocks: list[Block]) -> None:
        for block in blocks:
            self.ctx.trace(TraceKind.FINALIZE, slot=block.slot, value=block.digest)
            if self.on_finalize is not None:
                self.on_finalize(block)
        if not blocks:
            return
        tip = self.chain.finalized_height
        for slot, state in self.slots.items():
            if slot <= tip and state.timer is not None:
                state.timer.cancel()
                state.timer = None
        self._prune(tip)

    def _prune(self, tip: int) -> None:
        """Drop per-slot state far behind the finalized tip (bounded memory)."""
        horizon = tip - RETENTION_SLOTS
        stale = [slot for slot in self.slots if slot < horizon]
        for slot in stale:
            del self.slots[slot]
        # Notarization sets below the horizon are dead weight too: the
        # finalized-slot index answers every query that still matters.
        self.chain.prune_below(max(0, horizon))
        keep = {b.digest for b in self.chain.finalized}
        self.store.prune_below(max(0, horizon), keep)

    # -- view change (Algorithm 2) ---------------------------------------------

    def _on_view_change(self, sender: NodeId, message: MSViewChange) -> None:
        slot, view = message.slot, message.view
        if slot < 1 or view < 1:
            return
        state = self.slot_state(slot)
        if view <= state.view:
            return
        senders = state.vc_senders.setdefault(view, set())
        senders.add(sender)
        if self._qs().is_blocking(senders) and view > state.vc_sent:
            state.vc_sent = view
            self.ctx.broadcast(MSViewChange(slot, view))
        # Re-read: our own echo loops back synchronously and may have
        # advanced the slot's view already.
        if self._qs().is_quorum(senders) and view > state.view:
            self._do_view_change(slot, view)

    def _do_view_change(self, from_slot: int, view: int) -> None:
        """Move every non-finalized started slot ≥ ``from_slot`` to ``view``."""
        tip = self.chain.finalized_height
        aborted = sorted(
            slot
            for slot, state in self.slots.items()
            if slot >= from_slot and slot > tip and state.started
        )
        for slot in aborted:
            state = self.slot_state(slot)
            if view <= state.view:
                continue
            state.view = view
            state.vc_sent = max(state.vc_sent, view)
            self._arm_timer(slot)
            self.ctx.trace(TraceKind.VIEW_ENTER, slot=slot, view=view)
            suggest = state.storage.make_suggest(view)
            proof = state.storage.make_proof(view)
            self.ctx.broadcast(MSProof(slot, view, proof.vote1, proof.prev_vote1, proof.vote4))
            self.ctx.send(
                self.config.leader_of(slot, view),
                MSSuggest(slot, view, suggest.vote2, suggest.prev_vote2, suggest.vote3),
            )
        for slot in aborted:
            self._maybe_propose(slot)
            self._maybe_vote(slot)

    # -- suggest / proof -------------------------------------------------------

    def _on_suggest(self, sender: NodeId, message: MSSuggest) -> None:
        state = self.slot_state(message.slot)
        state.suggests.setdefault(message.view, {})[sender] = message
        if message.view == state.view:
            self._maybe_propose(message.slot)

    def _on_proof(self, sender: NodeId, message: MSProof) -> None:
        state = self.slot_state(message.slot)
        state.proofs.setdefault(message.view, {})[sender] = message
        if message.view == state.view:
            self._maybe_vote(message.slot)
