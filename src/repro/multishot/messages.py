"""Message types of Multi-shot TetraBFT (Section 6).

The good case uses only two message kinds — ``MSProposal`` and
``MSVote`` — which is the headline simplicity win over pipelined IT-HS
(whose sketch sends suggest/proof alongside every vote).  View changes
add per-slot ``MSViewChange`` and, on recovery, per-slot ``MSSuggest``
and ``MSProof`` mirroring the single-shot ones.

One ``⟨vote, slot, view, value⟩`` simultaneously plays four single-shot
roles: vote-1 for ``slot``, vote-2 for ``slot-1``, vote-3 for
``slot-2`` and vote-4 for ``slot-3`` (the values being the
corresponding chain ancestors).  The phase mapping lives in the node,
"preserved in the local memory" as the paper puts it — the wire format
stays two fields and a digest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import EMPTY_VOTE, VoteRecord
from repro.multishot.block import Block, Digest


@dataclass(frozen=True)
class MSProposal:
    """The leader's block for ``(slot, view)`` — also its implicit vote."""

    slot: int
    view: int
    block: Block

    def wire_size(self) -> int:
        return 16 + self.block.wire_size()


@dataclass(frozen=True)
class MSVote:
    """``⟨vote, slot, view, value⟩`` — one vote, four pipelined roles."""

    slot: int
    view: int
    digest: Digest


@dataclass(frozen=True)
class MSViewChange:
    """``⟨view-change, slot, view⟩`` — abort this slot (and its suffix)."""

    slot: int
    view: int


@dataclass(frozen=True)
class MSSuggest:
    """Per-slot vote-2/vote-3 history for the new leader (Rule 1)."""

    slot: int
    view: int
    vote2: VoteRecord = EMPTY_VOTE
    prev_vote2: VoteRecord = EMPTY_VOTE
    vote3: VoteRecord = EMPTY_VOTE


@dataclass(frozen=True)
class MSProof:
    """Per-slot vote-1/vote-4 history broadcast on view entry (Rule 3)."""

    slot: int
    view: int
    vote1: VoteRecord = EMPTY_VOTE
    prev_vote1: VoteRecord = EMPTY_VOTE
    vote4: VoteRecord = EMPTY_VOTE


@dataclass(frozen=True)
class VoteBatch:
    """Aggregated vote frame: one physical envelope, many logical messages.

    The message plane batches all broadcasts a node emits within one
    activation — typically every vote it casts for a Δ, with the
    leader's proposal piggybacked alongside its own implicit vote —
    into a single :class:`VoteBatch`.  Receivers unbatch before
    dispatch, so protocol logic only ever sees the individual messages
    in their original order and the envelope never changes semantics,
    only the frame count.
    """

    messages: tuple

    def logical_count(self) -> int:
        """Number of protocol messages this envelope carries."""
        return len(self.messages)

    def logical_messages(self) -> tuple:
        return self.messages

    def wire_size(self) -> int:
        from repro.metrics.collectors import estimate_wire_size

        # Envelope overhead is a length word; payloads dominate.
        return 4 + sum(estimate_wire_size(m) for m in self.messages)


MultiShotMessage = MSProposal | MSVote | MSViewChange | MSSuggest | MSProof
