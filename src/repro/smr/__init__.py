"""State-machine replication layer over Multi-shot TetraBFT."""

from repro.smr.kvstore import KVCommandError, KVStore
from repro.smr.mempool import Mempool, Transaction
from repro.smr.replica import InFlightIndex, Replica

__all__ = [
    "InFlightIndex",
    "KVCommandError",
    "KVStore",
    "Mempool",
    "Replica",
    "Transaction",
]
