"""State-machine replication layer over a pluggable consensus engine."""

from repro.smr.engine import (
    ENGINE_NAMES,
    ConsensusEngine,
    EngineFactory,
    chained_engine,
    engine_factory,
    multishot_engine,
)
from repro.smr.kvstore import KVCommandError, KVStore
from repro.smr.mempool import Mempool, Transaction
from repro.smr.replica import InFlightIndex, Replica

__all__ = [
    "ConsensusEngine",
    "ENGINE_NAMES",
    "EngineFactory",
    "InFlightIndex",
    "KVCommandError",
    "KVStore",
    "Mempool",
    "Replica",
    "Transaction",
    "chained_engine",
    "engine_factory",
    "multishot_engine",
]
