"""The pluggable consensus-engine boundary of the SMR layer.

The paper's headline claims are *comparative* — TetraBFT's good-case
and view-change latency against PBFT- and IT-HotStuff-style protocols —
so the end-to-end SMR experiment must be able to run the same client
path (mempool, in-flight dedup, deterministic execution, state digests)
over any of them.  Generalized consensus layers such as *pod*
(PAPERS.md) make exactly this separation: a client-facing replication
layer over a swappable ordering core.  This module defines that seam.

A :class:`ConsensusEngine` is the ordering core one
:class:`~repro.smr.replica.Replica` drives.  The contract, structurally
(it is a :class:`typing.Protocol`, so implementations need not inherit
anything):

* **construction hooks** — an engine is built by an
  :data:`EngineFactory` that receives the replica's *propose-payload
  hook* (``payload_fn(slot, parent_digest) -> payload``, called when
  this node leads a slot) and *finalization callback*
  (``on_finalize(block)``, called exactly once per finalized block, in
  chain order);
* ``start(ctx)`` / ``receive(sender, message)`` — the
  :class:`~repro.sim.runner.SimNode` plumbing, forwarded verbatim by
  the replica;
* ``store`` — the engine's :class:`~repro.multishot.block.BlockStore`
  (the *storage hook*: the replica's
  :class:`~repro.smr.replica.InFlightIndex` resolves lineage walks
  against it, and engines prune it behind their finalized tip);
* ``finalized_chain`` — the committed blocks, oldest first.

Two implementations ship:

* :class:`~repro.multishot.node.MultiShotNode` — the **reference
  implementation**: pipelined Multi-shot TetraBFT (one block per
  message delay in the good case).  :func:`multishot_engine` adapts a
  :class:`~repro.multishot.MultiShotConfig` into a factory that wires
  it exactly as the replica used to by hand, so TetraBFT through this
  boundary is byte-identical (state digests *and* traces) to the old
  direct-wired path.
* :class:`~repro.baselines.chained.ChainedEngine` — the Table 1
  baselines (PBFT, IT-HotStuff, Li et al.) promoted from single-shot
  protocol skeletons to multi-slot chained engines, so the comparison
  protocols run the *full* client path too (:func:`chained_engine`).

:func:`engine_factory` is the name-keyed registry the cross-protocol
experiment (``python -m repro engines``) and the CLI build from.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol, runtime_checkable

from repro.baselines.base import BaselineSpec
from repro.baselines.ithotstuff import IT_HS_SPEC
from repro.baselines.li import LI_SPEC
from repro.baselines.pbft import PBFT_BOUNDED_SPEC
from repro.core.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.multishot.batching import BatchingContext, batching_enabled, iter_logical
from repro.multishot.block import Block, BlockStore
from repro.multishot.messages import VoteBatch
from repro.multishot.node import FinalizeCallback, MultiShotConfig, MultiShotNode, PayloadFn
from repro.quorums.system import NodeId
from repro.sim.runner import NodeContext

__all__ = [
    "BatchingContext",
    "ConsensusEngine",
    "ENGINE_NAMES",
    "EngineFactory",
    "VoteBatch",
    "batching_enabled",
    "chained_engine",
    "engine_factory",
    "iter_logical",
    "multishot_engine",
]


@runtime_checkable
class ConsensusEngine(Protocol):
    """Structural interface of an SMR ordering core (see module docs)."""

    node_id: NodeId

    def start(self, ctx: NodeContext) -> None:
        """Begin participating; ``ctx`` carries clock/network/timers."""

    def receive(self, sender: NodeId, message: object) -> None:
        """Deliver one consensus message from ``sender``."""

    @property
    def store(self) -> BlockStore:
        """Block bodies this engine has seen (pruned behind the tip)."""

    @property
    def finalized_chain(self) -> list[Block]:
        """The committed chain, oldest block first."""


#: Builds one engine for one replica: (node id, propose-payload hook,
#: finalization callback) → engine.  The factory owns every other
#: parameter (protocol config, slot bounds); the replica owns the hooks.
EngineFactory = Callable[[NodeId, PayloadFn, FinalizeCallback], ConsensusEngine]

#: Registry keys accepted by :func:`engine_factory`, in report order.
ENGINE_NAMES = ("tetrabft", "pbft", "ithotstuff", "li")

_CHAINED_SPECS: dict[str, BaselineSpec] = {
    "pbft": PBFT_BOUNDED_SPEC,
    "ithotstuff": IT_HS_SPEC,
    "li": LI_SPEC,
}


def multishot_engine(config: MultiShotConfig, batching: bool | None = None) -> EngineFactory:
    """Factory for the reference engine: pipelined Multi-shot TetraBFT.

    Wires :class:`MultiShotNode` precisely as
    :class:`~repro.smr.replica.Replica` historically did inline, which
    is what keeps the refactored path byte-identical to the pre-engine
    wiring.  ``batching`` overrides the message-plane default (``None``
    consults the ``REPRO_NO_BATCH`` escape hatch).
    """

    def build(
        node_id: NodeId, payload_fn: PayloadFn, on_finalize: FinalizeCallback
    ) -> ConsensusEngine:
        return MultiShotNode(
            node_id, config, payload_fn=payload_fn, on_finalize=on_finalize, batching=batching
        )

    return build


def chained_engine(
    spec: BaselineSpec,
    base: ProtocolConfig,
    max_slots: int | None = None,
    batching: bool | None = None,
) -> EngineFactory:
    """Factory for a Table 1 baseline run as a multi-slot chained engine."""
    from repro.baselines.chained import ChainedEngine

    def build(
        node_id: NodeId, payload_fn: PayloadFn, on_finalize: FinalizeCallback
    ) -> ConsensusEngine:
        return ChainedEngine(
            node_id,
            base,
            spec,
            payload_fn=payload_fn,
            on_finalize=on_finalize,
            max_slots=max_slots,
            batching=batching,
        )

    return build


def engine_factory(
    name: str,
    base: ProtocolConfig,
    max_slots: int | None = None,
    batching: bool | None = None,
) -> EngineFactory:
    """The named engine over ``base`` — the registry behind ``repro engines``.

    ``max_slots`` bounds how far leaders extend the chain; ``None``
    leaves chained baselines unbounded (their slots finalize eagerly,
    so runs are bounded by the workload and horizon instead) and gives
    TetraBFT its default finite budget.  ``batching`` overrides the
    message-plane default for A/B runs (``None`` → ``REPRO_NO_BATCH``).
    """
    if name == "tetrabft":
        config = (
            MultiShotConfig(base=base)
            if max_slots is None
            else MultiShotConfig(base=base, max_slots=max_slots)
        )
        return multishot_engine(config, batching=batching)
    spec = _CHAINED_SPECS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown consensus engine {name!r}; known: {', '.join(ENGINE_NAMES)}"
        )
    return chained_engine(spec, base, max_slots=max_slots, batching=batching)
