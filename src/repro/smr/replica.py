"""SMR replica: Multi-shot TetraBFT + mempool + deterministic execution.

This is the deployment shape the paper's introduction motivates: a
quasi-permissionless blockchain node.  A :class:`Replica` wraps a
:class:`~repro.multishot.node.MultiShotNode`; when this replica leads a
slot it proposes a batch from its mempool, and every finalized block's
transactions are applied, in chain order, to the local
:class:`~repro.smr.kvstore.KVStore`.

Clients inject transactions with :meth:`submit`; in a simulation,
spread the same transactions to at least one well-behaved replica and
Definition 2's liveness says they eventually execute everywhere.
"""

from __future__ import annotations

from repro.multishot.block import Block
from repro.multishot.node import MultiShotConfig, MultiShotNode
from repro.quorums.system import NodeId
from repro.sim.runner import NodeContext, SimNode
from repro.smr.kvstore import KVStore
from repro.smr.mempool import Mempool, Transaction


class Replica(SimNode):
    """One blockchain replica (consensus + mempool + execution)."""

    def __init__(
        self,
        node_id: NodeId,
        config: MultiShotConfig,
        max_batch: int = 100,
    ) -> None:
        self.node_id = node_id
        self.mempool = Mempool(max_batch=max_batch)
        self.store = KVStore()
        self.executed_blocks: list[Block] = []
        self.consensus = MultiShotNode(
            node_id,
            config,
            payload_fn=self._make_payload,
            on_finalize=self._execute_block,
        )

    # -- SimNode plumbing -----------------------------------------------------

    def start(self, ctx: NodeContext) -> None:
        self.consensus.start(ctx)

    def receive(self, sender: NodeId, message: object) -> None:
        self.consensus.receive(sender, message)

    # -- client API --------------------------------------------------------------

    def submit(self, txn: Transaction) -> bool:
        """Inject a client transaction into this replica's mempool."""
        return self.mempool.add(txn)

    @property
    def finalized_chain(self) -> list[Block]:
        return self.consensus.finalized_chain

    def state_digest(self) -> str:
        return self.store.state_digest()

    # -- consensus callbacks --------------------------------------------------------

    def _make_payload(self, slot: int, parent: str) -> object:
        """Block payload when this replica leads ``slot``: a mempool batch.

        The batch is not removed from the mempool — the block may be
        aborted by a view change, in which case a later leader (or this
        one, in a later slot) re-proposes the transactions.  They leave
        the pool only on finalization.  Transactions already included
        on the unfinalized lineage we extend are skipped: they are in
        flight, and re-including them would waste the block on
        duplicates the executor must then discard.
        """
        del slot
        in_flight: set[str] = set()
        chain = self.consensus.store.chain_to_genesis(parent)
        if chain is not None:
            for block in chain:
                payload = block.payload
                if isinstance(payload, tuple):
                    in_flight.update(
                        txn.txid for txn in payload if isinstance(txn, Transaction)
                    )
        return self.mempool.next_batch(exclude=frozenset(in_flight))

    def _execute_block(self, block: Block) -> None:
        """Apply one finalized block in chain order."""
        self.executed_blocks.append(block)
        payload = block.payload
        if not isinstance(payload, tuple):
            return  # e.g. a synthetic payload from a non-SMR proposer
        applied_ids = []
        for txn in payload:
            if not isinstance(txn, Transaction):
                continue
            if self.mempool.is_finalized(txn.txid):
                continue  # duplicate across blocks: first execution wins
            self.store.apply(txn.txid, txn.op)
            applied_ids.append(txn.txid)
        self.mempool.mark_finalized(applied_ids)
