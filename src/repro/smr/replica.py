"""SMR replica: a pluggable consensus engine + mempool + execution.

This is the deployment shape the paper's introduction motivates: a
quasi-permissionless blockchain node.  A :class:`Replica` wraps a
:class:`~repro.smr.engine.ConsensusEngine` — by default the pipelined
Multi-shot TetraBFT reference engine, or any
:data:`~repro.smr.engine.EngineFactory` (e.g. the Table 1 baselines as
:class:`~repro.baselines.chained.ChainedEngine`) so the comparison
protocols run the identical client path.  When this replica leads a
slot it proposes a batch from its mempool, and every finalized block's
transactions are applied, in chain order, to the local
:class:`~repro.smr.kvstore.KVStore`.

Clients inject transactions with :meth:`submit`; in a simulation,
spread the same transactions to at least one well-behaved replica and
Definition 2's liveness says they eventually execute everywhere.
Submissions may land before the simulation starts; their submit
timestamps are recorded at the replica's first tick (the earliest
instant it could have seen them), not at a fictitious ``t=0``.

Proposal-time duplicate avoidance is incremental: an
:class:`InFlightIndex` caches each block's transaction-id set and walks
parent pointers only through the *unfinalized* suffix of the lineage
being extended (bounded by the abort window), instead of re-walking the
whole chain to genesis on every proposal as the seed implementation
did.  Hook a :class:`~repro.metrics.smr_trackers.SMRTrackers` bundle
into the constructor to record client-observed submit→finalize latency
and commit throughput for the ``smr`` experiment.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.metrics.smr_trackers import SMRTrackers
from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore, Digest
from repro.multishot.node import MultiShotConfig
from repro.quorums.system import NodeId
from repro.smr.engine import ConsensusEngine, EngineFactory, multishot_engine
from repro.sim.runner import NodeContext, SimNode
from repro.smr.kvstore import KVStore
from repro.smr.mempool import Mempool, Transaction
from repro.storage.api import MemoryStorage, ReplicaStorage


class InFlightIndex:
    """Incrementally maintained map of which txids ride which lineage.

    ``txids_on(parent)`` is the set a proposer must exclude: every
    transaction already included in an unfinalized block on the chain
    ending at ``parent``.  Each block's txid set is extracted from its
    payload exactly once (then cached), and the lineage walk stops at
    the finalized frontier, so the per-proposal cost is O(abort window
    × batch) regardless of chain length.  Memory is bounded the same
    way: every finalization prunes cache and frontier entries more than
    :data:`RETENTION_SLOTS` behind the tip (only digests a future
    lineage walk can still reach matter — all within the abort window).
    """

    #: Slots of frontier/cache history retained behind the finalized
    #: tip.  An independent constant: it must stay >= the consensus
    #: node's own retention (RETENTION_SLOTS in multishot/node.py, 8)
    #: so the frontier outlives every lineage a proposer can still
    #: extend; kept at double that for slack.  If a walk ever outruns
    #: it anyway, the pruned block store truncates the walk and the
    #: proposer merely excludes less — never incorrectly.
    RETENTION_SLOTS = 16

    def __init__(self, store: BlockStore) -> None:
        self._store = store
        # digest → (parent digest, block slot, txids carried by it).
        self._by_digest: dict[Digest, tuple[Digest, int, frozenset[str]]] = {}
        # Finalized-frontier digests (→ slot): lineage walks stop here
        # (their transactions left the mempool at finalization).
        self._finalized: dict[Digest, int] = {}

    @staticmethod
    def block_txids(block: Block) -> frozenset[str]:
        payload = block.payload
        if not isinstance(payload, tuple):
            return frozenset()
        return frozenset(txn.txid for txn in payload if isinstance(txn, Transaction))

    def txids_on(self, parent: Digest) -> set[str]:
        """Union of txids on the unfinalized suffix ending at ``parent``.

        A missing block body truncates the walk: the proposer excludes
        what it can see (the seed behaviour excluded nothing in that
        case; a partial exclusion only avoids more duplicates).
        """
        in_flight: set[str] = set()
        current = parent
        while current != GENESIS_DIGEST and current not in self._finalized:
            entry = self._by_digest.get(current)
            if entry is None:
                block = self._store.get(current)
                if block is None:
                    break
                entry = (block.parent, block.slot, self.block_txids(block))
                self._by_digest[current] = entry
            in_flight.update(entry[2])
            current = entry[0]
        return in_flight

    def mark_finalized(self, block: Block) -> None:
        """Advance the frontier: ``block`` no longer counts as in flight."""
        self._finalized[block.digest] = block.slot
        self._by_digest.pop(block.digest, None)
        horizon = block.slot - self.RETENTION_SLOTS
        if horizon <= 0:
            return
        # Frontier digests and cached lineages (finalized *or* aborted)
        # behind the horizon can never be reached by a future walk.
        for digest in [d for d, s in self._finalized.items() if s < horizon]:
            del self._finalized[digest]
        for digest in [d for d, e in self._by_digest.items() if e[1] < horizon]:
            del self._by_digest[digest]


class Replica(SimNode):
    """One blockchain replica (consensus + mempool + execution)."""

    def __init__(
        self,
        node_id: NodeId,
        config: MultiShotConfig | None = None,
        max_batch: int = 100,
        trackers: SMRTrackers | None = None,
        engine_factory: EngineFactory | None = None,
        storage: "ReplicaStorage | None" = None,
    ) -> None:
        if engine_factory is None:
            if config is None:
                raise ConfigurationError(
                    "Replica needs a MultiShotConfig (for the default "
                    "TetraBFT engine) or an explicit engine_factory"
                )
            engine_factory = multishot_engine(config)
        if storage is None:
            storage = MemoryStorage()
        self.node_id = node_id
        self.mempool = Mempool(max_batch=max_batch)
        self.store = KVStore()
        self.executed_blocks: list[Block] = []
        self.trackers = trackers
        self.storage = storage
        self._restoring = False
        self._ctx: NodeContext | None = None
        self._pre_start_txids: list[str] = []
        self.consensus: ConsensusEngine = engine_factory(
            node_id, self._make_payload, self._execute_block
        )
        self.in_flight = InFlightIndex(self.consensus.store)

    # -- SimNode plumbing -----------------------------------------------------

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        if self._pre_start_txids:
            # Transactions submitted before the run began: their clock
            # starts at the replica's first tick, not at a fictitious
            # t=0 that would silently inflate measured latency.
            for txid in self._pre_start_txids:
                self.trackers.record_submit(txid, ctx.now)
            self._pre_start_txids.clear()
        self.consensus.start(ctx)

    def receive(self, sender: NodeId, message: object) -> None:
        self.consensus.receive(sender, message)

    # -- client API --------------------------------------------------------------

    def submit(self, txn: Transaction) -> bool:
        """Inject a client transaction into this replica's mempool."""
        accepted = self.mempool.add(txn)
        if accepted and self.trackers is not None:
            if self._ctx is None:
                self._pre_start_txids.append(txn.txid)
            else:
                self.trackers.record_submit(txn.txid, self._ctx.now)
            self.trackers.record_mempool(self.node_id, self.mempool.pending_count)
        return accepted

    @property
    def finalized_chain(self) -> list[Block]:
        return self.consensus.finalized_chain

    def state_digest(self) -> str:
        return self.store.state_digest()

    # -- durability / recovery ------------------------------------------------

    def bootstrap(self, blocks: list[Block] | tuple[Block, ...]) -> None:
        """Restore a recovered finalized prefix before joining consensus.

        Installs ``blocks`` (a hash-linked chain from slot 1, e.g. a
        :class:`~repro.storage.api.RecoveredState`'s) into the engine as
        already-finalized history, then re-executes them through the
        normal execution path so the kvstore, dedup ledger, and
        in-flight index are rebuilt exactly as a live run would have
        built them.  Trackers and the storage hook are suppressed during
        the replay: these blocks were already recorded (and persisted)
        in a previous life.
        """
        if self._ctx is not None:
            raise ConfigurationError("bootstrap must run before the replica starts")
        if not blocks:
            return
        bootstrap_fn = getattr(self.consensus, "bootstrap_finalized", None)
        if bootstrap_fn is None:
            raise ConfigurationError(
                f"engine {type(self.consensus).__name__} does not support "
                "bootstrap from a recovered chain"
            )
        bootstrap_fn(tuple(blocks))
        self._restoring = True
        try:
            for block in blocks:
                self._execute_block(block)
        finally:
            self._restoring = False

    def offer_blocks(self, blocks: list[Block] | tuple[Block, ...]) -> int:
        """Hand validated finalized blocks from a peer to the engine.

        The state-transfer catch-up path: the engine takes the bodies,
        re-checks finalization, and executes whatever newly chains to
        its tip via the normal callbacks (so these blocks *are* acked,
        tracked, and persisted — unlike a :meth:`bootstrap` replay).
        Returns how many slots the finalized tip advanced.
        """
        offer_fn = getattr(self.consensus, "offer_bodies", None)
        if offer_fn is None:
            raise ConfigurationError(
                f"engine {type(self.consensus).__name__} does not support "
                "state-transfer body offers"
            )
        before = len(self.consensus.finalized_chain)
        offer_fn(tuple(blocks))
        return len(self.consensus.finalized_chain) - before

    # -- consensus callbacks --------------------------------------------------------

    def _make_payload(self, slot: int, parent: str) -> object:
        """Block payload when this replica leads ``slot``: a mempool batch.

        The batch is not removed from the mempool — the block may be
        aborted by a view change, in which case a later leader (or this
        one, in a later slot) re-proposes the transactions.  They leave
        the pool only on finalization.  Transactions already included
        on the unfinalized lineage we extend are skipped: they are in
        flight, and re-including them would waste the block on
        duplicates the executor must then discard.
        """
        del slot
        batch = self.mempool.next_batch(exclude=self.in_flight.txids_on(parent))
        if self.trackers is not None and batch:
            now = self._ctx.now if self._ctx is not None else 0.0
            self.trackers.record_proposal(
                self.node_id,
                tuple(txn.txid for txn in batch if isinstance(txn, Transaction)),
                now,
            )
        return batch

    def _execute_block(self, block: Block) -> None:
        """Apply one finalized block in chain order."""
        self.executed_blocks.append(block)
        self.in_flight.mark_finalized(block)
        payload = block.payload
        if not isinstance(payload, tuple):
            # e.g. a synthetic payload from a non-SMR proposer: nothing
            # to apply, but the block is chain history and must still be
            # durably logged or recovery would find a gap.
            if not self._restoring:
                self.storage.block_executed(block, self)
            return
        applied_ids = []
        for txn in payload:
            if not isinstance(txn, Transaction):
                continue
            if self.mempool.is_finalized(txn.txid):
                continue  # duplicate across blocks: first execution wins
            self.store.apply(txn.txid, txn.op)
            applied_ids.append(txn.txid)
        self.mempool.mark_finalized(applied_ids)
        if self._restoring:
            return  # recovery replay: already persisted and tracked
        self.storage.block_executed(block, self)
        if self.trackers is not None:
            now = self._ctx.now if self._ctx is not None else 0.0
            self.trackers.record_block(
                self.node_id,
                block.slot,
                len(applied_ids),
                self.mempool.pending_count,
                now,
            )
            for txid in applied_ids:
                self.trackers.record_commit(self.node_id, txid, now)
