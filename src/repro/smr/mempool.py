"""Transaction mempool.

The liveness property of multi-shot consensus (Definition 2) is stated
over transactions: anything a well-behaved node receives must
eventually appear in every finalized chain.  The mempool is the queue
between clients and block proposers: FIFO with deduplication, batch
extraction for payloads, and acknowledgement of finalized transactions
so re-proposals stop.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class Transaction:
    """An opaque client command with a client-chosen unique id."""

    txid: str
    op: object

    def wire_size(self) -> int:
        return len(self.txid) + len(repr(self.op))


class Mempool:
    """FIFO pool with dedup and finalization acknowledgement."""

    def __init__(self, max_batch: int = 100) -> None:
        self.max_batch = max_batch
        self._pending: OrderedDict[str, Transaction] = OrderedDict()
        self._finalized: set[str] = set()

    def add(self, txn: Transaction) -> bool:
        """Queue a transaction; returns False for duplicates/finalized."""
        if txn.txid in self._pending or txn.txid in self._finalized:
            return False
        self._pending[txn.txid] = txn
        return True

    def next_batch(self, exclude: frozenset[str] = frozenset()) -> tuple[Transaction, ...]:
        """Up to ``max_batch`` oldest pending transactions.

        Transactions are not removed here — they stay pending until
        acknowledged via :meth:`mark_finalized`, so a failed block's
        payload is re-proposed by a later leader.  ``exclude`` lets a
        proposer skip transactions already included in the unfinalized
        chain it is extending (they are in flight, not failed).
        """
        batch = []
        for txid, txn in self._pending.items():
            if txid in exclude:
                continue
            batch.append(txn)
            if len(batch) >= self.max_batch:
                break
        return tuple(batch)

    def mark_finalized(self, txids: list[str]) -> None:
        for txid in txids:
            self._pending.pop(txid, None)
            self._finalized.add(txid)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def finalized_count(self) -> int:
        return len(self._finalized)

    def is_finalized(self, txid: str) -> bool:
        return txid in self._finalized
