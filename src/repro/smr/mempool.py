"""Transaction mempool.

The liveness property of multi-shot consensus (Definition 2) is stated
over transactions: anything a well-behaved node receives must
eventually appear in every finalized chain.  The mempool is the queue
between clients and block proposers: FIFO with deduplication, batch
extraction for payloads, and acknowledgement of finalized transactions
so re-proposals stop.

Internally the pool keeps an **in-flight index**: transactions a
proposer excluded (because they already sit in an unfinalized block on
the lineage being extended) are parked in a side queue instead of being
re-scanned from the head of the pool on every proposal.  They return to
the proposable queue — in their original FIFO position — only when a
later call stops excluding them, which happens exactly when their block
was aborted by a view change (finalization removes them altogether).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Set
from dataclasses import dataclass


@dataclass(frozen=True)
class Transaction:
    """An opaque client command with a client-chosen unique id."""

    txid: str
    op: object

    def wire_size(self) -> int:
        return len(self.txid) + len(repr(self.op))


class Mempool:
    """FIFO pool with dedup, an in-flight index, and a finalization ledger."""

    def __init__(self, max_batch: int = 100) -> None:
        self.max_batch = max_batch
        # Proposable transactions, in submission (seq) order.
        self._pending: OrderedDict[str, Transaction] = OrderedDict()
        # In-flight transactions: excluded by the last next_batch call
        # because they already ride an unfinalized block.
        self._in_flight: OrderedDict[str, Transaction] = OrderedDict()
        # Submission order, used to restore FIFO position on release.
        self._seq: dict[str, int] = {}
        self._next_seq = 0
        # The dedup ledger: every txid ever finalized, kept forever *by
        # design* — it is what stops a finalized transaction from being
        # resubmitted by a client or re-executed from a duplicate block,
        # so it must cover the whole history, not a window.  It grows
        # with the chain (one string per committed transaction), like
        # the chain itself.
        self._finalized: set[str] = set()

    def add(self, txn: Transaction) -> bool:
        """Queue a transaction; returns False for duplicates/finalized."""
        txid = txn.txid
        if txid in self._pending or txid in self._in_flight or txid in self._finalized:
            return False
        self._pending[txid] = txn
        self._seq[txid] = self._next_seq
        self._next_seq += 1
        return True

    def next_batch(self, exclude: Set[str] = frozenset()) -> tuple[Transaction, ...]:
        """Up to ``max_batch`` oldest proposable transactions.

        Transactions are not removed here — they stay queued until
        acknowledged via :meth:`mark_finalized`, so a failed block's
        payload is re-proposed by a later leader.  ``exclude`` names
        transactions already included in the unfinalized chain the
        proposer is extending (they are in flight, not failed): they
        are parked in the in-flight index, so the *next* proposal skips
        them without re-walking them at the head of the queue, and any
        parked transaction no longer excluded (its block was aborted)
        is released back into its FIFO position first.
        """
        if self._in_flight:
            released = [txid for txid in self._in_flight if txid not in exclude]
            if released:
                self._release(released)
        batch: list[Transaction] = []
        parked: list[str] = []
        for txid, txn in self._pending.items():
            if txid in exclude:
                parked.append(txid)
                continue
            batch.append(txn)
            if len(batch) >= self.max_batch:
                break
        for txid in parked:
            self._in_flight[txid] = self._pending.pop(txid)
        return tuple(batch)

    def _release(self, txids: list[str]) -> None:
        """Return aborted in-flight transactions to the proposable queue.

        ``_pending`` is always in submission (seq) order, so a linear
        merge with the seq-sorted released entries restores global FIFO
        order in O(pending + released·log released) — no full re-sort.
        """
        seq = self._seq
        released = sorted(txids, key=seq.__getitem__)
        merged: OrderedDict[str, Transaction] = OrderedDict()
        rel_iter = iter(released)
        rel_id = next(rel_iter, None)
        for txid, txn in self._pending.items():
            while rel_id is not None and seq[rel_id] < seq[txid]:
                merged[rel_id] = self._in_flight.pop(rel_id)
                rel_id = next(rel_iter, None)
            merged[txid] = txn
        while rel_id is not None:
            merged[rel_id] = self._in_flight.pop(rel_id)
            rel_id = next(rel_iter, None)
        self._pending = merged

    def mark_finalized(self, txids: Iterable[str]) -> None:
        for txid in txids:
            self._pending.pop(txid, None)
            self._in_flight.pop(txid, None)
            self._seq.pop(txid, None)
            self._finalized.add(txid)

    @property
    def pending_count(self) -> int:
        """Queued-but-unfinalized transactions, in flight included."""
        return len(self._pending) + len(self._in_flight)

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    @property
    def finalized_count(self) -> int:
        return len(self._finalized)

    def is_finalized(self, txid: str) -> bool:
        return txid in self._finalized
