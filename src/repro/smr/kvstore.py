"""A deterministic replicated key-value state machine.

The canonical SMR application: every replica applies the same finalized
transaction sequence to an initially empty map and must end in the same
state — which the integration tests check byte for byte via
:meth:`state_digest`.

Supported operations (kept deliberately tiny; determinism is the point,
not expressiveness):

* ``("set", key, value)``
* ``("del", key)``
* ``("incr", key, amount)`` — arithmetic on integer cells
* ``("noop",)``
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.errors import ReproError


class KVCommandError(ReproError):
    """A transaction carried a malformed command."""


class KVStore:
    """The deterministic state machine each replica executes."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self._applied: list[str] = []

    def apply(self, txid: str, op: object) -> None:
        """Apply one finalized command.  Malformed commands raise
        (replicas validate payloads before proposing; a malformed one
        reaching execution is a bug, not Byzantine input)."""
        if not isinstance(op, tuple) or not op:
            raise KVCommandError(f"command must be a non-empty tuple, got {op!r}")
        kind = op[0]
        if kind == "set":
            if len(op) != 3:
                raise KVCommandError(f"set needs (set, key, value), got {op!r}")
            self._data[op[1]] = op[2]
        elif kind == "del":
            if len(op) != 2:
                raise KVCommandError(f"del needs (del, key), got {op!r}")
            self._data.pop(op[1], None)
        elif kind == "incr":
            if len(op) != 3 or not isinstance(op[2], int):
                raise KVCommandError(f"incr needs (incr, key, int), got {op!r}")
            current = self._data.get(op[1], 0)
            if not isinstance(current, int):
                raise KVCommandError(f"incr on non-integer cell {op[1]!r}")
            self._data[op[1]] = current + op[2]
        elif kind == "noop":
            pass
        else:
            raise KVCommandError(f"unknown command kind {kind!r}")
        self._applied.append(txid)

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    @property
    def applied_count(self) -> int:
        return len(self._applied)

    @property
    def applied_txids(self) -> list[str]:
        return list(self._applied)

    def items(self) -> list[tuple[str, Any]]:
        """The map's entries, sorted — the snapshot/digest image order."""
        return sorted(self._data.items())

    def state_digest(self) -> str:
        """Order-independent digest of the current map plus the applied
        log order — two replicas agree iff their digests agree."""
        material = repr(sorted(self._data.items())) + "|" + repr(self._applied)
        return hashlib.sha256(material.encode()).hexdigest()[:16]
