"""Seeded transaction workload generators for SMR experiments."""

from repro.workloads.generators import (
    BurstyWorkload,
    HotKeyWorkload,
    UniformWorkload,
    Workload,
)

__all__ = ["BurstyWorkload", "HotKeyWorkload", "UniformWorkload", "Workload"]
