"""Transaction workload generators for SMR experiments.

Deterministic (seeded) client models that feed
:class:`~repro.smr.replica.Replica` mempools:

* :class:`UniformWorkload` — a steady open-loop stream of independent
  key writes, the baseline workload;
* :class:`BurstyWorkload` — alternating quiet and burst phases,
  exercising backlog drain (the scenario where non-responsive
  protocols "cause large performance hiccups", §1);
* :class:`HotKeyWorkload` — Zipf-like skew onto a few hot counters,
  exercising deterministic-execution conflicts.

Each generator yields ``(submit_time, Transaction)`` pairs; the
``inject`` helper schedules them into a running simulation against any
subset of replicas.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.sim.runner import Simulation
from repro.smr.mempool import Transaction
from repro.smr.replica import Replica


class Workload(ABC):
    """A deterministic stream of timestamped transactions."""

    @abstractmethod
    def transactions(self) -> Iterator[tuple[float, Transaction]]:
        """Yield (submit_time, txn) in non-decreasing time order."""

    def inject(
        self,
        simulation: Simulation,
        replicas: Sequence[Replica],
        targets: Sequence[int] | None = None,
    ) -> int:
        """Schedule every transaction for submission during the run.

        ``targets`` selects which replicas receive submissions (default:
        all — clients broadcasting to every replica, the standard
        liveness assumption).  Returns the number of transactions.

        Every target id must name a replica in ``replicas`` and the
        resulting set must be non-empty: a typo here used to inject to
        *zero* replicas and let a "liveness" run pass vacuously, so
        both cases now raise :class:`ConfigurationError`.
        """
        if targets is None:
            chosen = list(replicas)
        else:
            known = {replica.node_id for replica in replicas}
            unknown = set(targets) - known
            if unknown:
                raise ConfigurationError(
                    f"inject targets name unknown replica ids {sorted(unknown)}; "
                    f"known ids: {sorted(known)}"
                )
            target_set = set(targets)
            chosen = [r for r in replicas if r.node_id in target_set]
        if not chosen:
            raise ConfigurationError(
                "inject requires at least one target replica; got an empty set"
            )
        count = 0
        for submit_time, txn in self.transactions():
            count += 1

            def deliver(txn=txn):
                for replica in chosen:
                    replica.submit(txn)

            simulation.scheduler.schedule_at(submit_time, deliver)
        return count


class UniformWorkload(Workload):
    """``rate`` transactions per delay unit, independent keys."""

    def __init__(self, count: int, rate: float = 10.0, key_space: int = 64, seed: int = 0) -> None:
        self.count = count
        self.rate = rate
        self.key_space = key_space
        self.seed = seed

    def transactions(self) -> Iterator[tuple[float, Transaction]]:
        rng = random.Random(self.seed)
        for k in range(self.count):
            key = f"key-{rng.randrange(self.key_space)}"
            yield k / self.rate, Transaction(f"uni-{self.seed}-{k}", ("set", key, k))


class BurstyWorkload(Workload):
    """Quiet/burst phases: ``burst_size`` txns land at each burst instant."""

    def __init__(
        self,
        bursts: int,
        burst_size: int = 50,
        period: float = 10.0,
        seed: int = 0,
    ) -> None:
        self.bursts = bursts
        self.burst_size = burst_size
        self.period = period
        self.seed = seed

    def transactions(self) -> Iterator[tuple[float, Transaction]]:
        for burst in range(self.bursts):
            at = burst * self.period
            for k in range(self.burst_size):
                txid = f"burst-{self.seed}-{burst}-{k}"
                yield at, Transaction(txid, ("incr", f"burst-{burst}", 1))


class HotKeyWorkload(Workload):
    """Skewed increments: most traffic hits a handful of hot counters."""

    def __init__(
        self,
        count: int,
        rate: float = 10.0,
        hot_keys: int = 3,
        hot_fraction: float = 0.8,
        cold_keys: int = 50,
        seed: int = 0,
    ) -> None:
        self.count = count
        self.rate = rate
        self.hot_keys = hot_keys
        self.hot_fraction = hot_fraction
        self.cold_keys = cold_keys
        self.seed = seed

    def transactions(self) -> Iterator[tuple[float, Transaction]]:
        rng = random.Random(self.seed)
        for k in range(self.count):
            if rng.random() < self.hot_fraction:
                key = f"hot-{rng.randrange(self.hot_keys)}"
            else:
                key = f"cold-{rng.randrange(self.cold_keys)}"
            yield k / self.rate, Transaction(f"hot-{self.seed}-{k}", ("incr", key, 1))
