"""Per-client admission control and token-bucket rate limiting.

The gateway is the first layer that meets untrusted traffic, so its
first job is protecting the cluster behind it: a client that floods
the submission endpoint must be rejected *at the gateway* — with a
structured error and a ``Retry-After`` hint — before its transactions
ever reach a replica mempool.  Two mechanisms, both per client:

* :class:`TokenBucket` — classic refill-at-rate / spend-per-request
  limiting with a burst allowance, clock-injectable so tests pin the
  refill arithmetic exactly;
* :class:`AdmissionController` — caps the number of distinct clients
  and the submitted-but-uncommitted transactions any one client may
  have in flight, so one abusive client cannot occupy the whole
  gateway (per-client isolation: everyone gets their own bucket and
  their own in-flight budget).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ReproError


class GatewayError(ReproError):
    """Base class for structured gateway-side rejections."""


class RateLimited(GatewayError):
    """The client exceeded its token bucket; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionDenied(GatewayError):
    """The gateway is at capacity for this client or overall."""

    def __init__(self, message: str, code: str) -> None:
        super().__init__(message)
        self.code = code


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, ``burst`` capacity.

    The bucket starts full (a fresh client gets its burst).  ``clock``
    is injectable so the refill arithmetic is unit-testable without
    sleeping.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive, got {rate}, {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    @property
    def tokens(self) -> float:
        """Current token count (refilled to now)."""
        self._refill(self._clock())
        return self._tokens

    def try_take(self, cost: float = 1.0) -> float:
        """Spend ``cost`` tokens; returns 0.0 on success, else the
        seconds until enough tokens will have refilled (the
        ``Retry-After`` the handler layer surfaces)."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        return (cost - self._tokens) / self.rate


@dataclass
class ClientState:
    """One admitted client's gateway-side state."""

    client_id: str
    bucket: TokenBucket
    #: Submitted-but-uncommitted transactions.
    inflight: int = 0
    submitted: int = 0
    rejected: int = 0
    #: txids this client submitted (dedup + accounting).
    txids: set[str] = field(default_factory=set)


class AdmissionController:
    """Admits clients and enforces per-client isolation budgets."""

    def __init__(
        self,
        *,
        max_clients: int,
        max_inflight_per_client: int,
        rate: float,
        burst: float,
        clock=time.monotonic,
    ) -> None:
        self.max_clients = max_clients
        self.max_inflight_per_client = max_inflight_per_client
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self.clients: dict[str, ClientState] = {}

    def client(self, client_id: str) -> ClientState:
        """The client's state, admitting it if there is capacity."""
        state = self.clients.get(client_id)
        if state is None:
            if len(self.clients) >= self.max_clients:
                raise AdmissionDenied(
                    f"gateway is at its {self.max_clients}-client capacity",
                    code="client_capacity",
                )
            state = ClientState(
                client_id, TokenBucket(self.rate, self.burst, clock=self._clock)
            )
            self.clients[client_id] = state
        return state

    def check_submit(self, client_id: str) -> ClientState:
        """Admission + rate limiting for one submission attempt.

        Raises :class:`AdmissionDenied` (no capacity for a new client),
        :class:`RateLimited` (bucket empty, with Retry-After), or the
        in-flight-cap variant of :class:`RateLimited` (the client must
        wait for its own commits before submitting more — another
        client's backlog never counts against it).
        """
        state = self.client(client_id)
        if state.inflight >= self.max_inflight_per_client:
            state.rejected += 1
            # The honest hint: in-flight drains at commit speed, which
            # the gateway cannot promise; one token period is the
            # minimum sensible backoff.
            raise RateLimited(
                f"client {client_id!r} has {state.inflight} transactions in "
                f"flight (cap {self.max_inflight_per_client})",
                retry_after=1.0 / state.bucket.rate,
            )
        wait = state.bucket.try_take()
        if wait > 0.0:
            state.rejected += 1
            raise RateLimited(
                f"client {client_id!r} exceeded its rate budget "
                f"({state.bucket.rate:g}/s, burst {state.bucket.burst:g})",
                retry_after=wait,
            )
        return state
