"""Client gateway: a layered service in front of the replica cluster.

Real deployments do not hand every client a TCP connection to every
replica — a *gateway* terminates untrusted client traffic, enforces
fairness, batches submissions, and serves reads, so the consensus
cluster only ever sees well-formed, rate-bounded frames from one peer.
This package is that plane, in three strict layers:

* **handler** (:mod:`repro.gateway.app`, :mod:`repro.gateway.http`) —
  a hand-rolled asyncio HTTP/1.1 + WebSocket API (the container has no
  third-party web stack): submit, status, state/chain reads, health,
  metrics, and a commit-event subscription stream;
* **service** (:mod:`repro.gateway.service`,
  :mod:`repro.gateway.ratelimit`) — per-client admission control and
  token buckets, server-side submission batching (the client-plane
  sibling of the message plane's vote aggregation), f+1 quorum commit
  tracking, subscription fan-out with slow-consumer eviction, and the
  snapshot read path;
* **repository** (:mod:`repro.net.client`) — the same replica
  connection pool the A7 bench driver uses; the gateway adds no second
  wire implementation.

``python -m repro gateway`` (:mod:`repro.eval.gateway_bench`) drives
this stack open-loop with thousands of concurrent clients — the A8
experiment.
"""

from repro.gateway.app import GatewayServer, parse_transaction
from repro.gateway.http import HTTPClient, WSClient
from repro.gateway.ratelimit import (
    AdmissionController,
    AdmissionDenied,
    GatewayError,
    RateLimited,
    TokenBucket,
)
from repro.gateway.service import (
    GatewayConfig,
    GatewayService,
    Subscription,
    TxnStatus,
)

__all__ = [
    "GatewayServer",
    "parse_transaction",
    "HTTPClient",
    "WSClient",
    "AdmissionController",
    "AdmissionDenied",
    "GatewayError",
    "RateLimited",
    "TokenBucket",
    "GatewayConfig",
    "GatewayService",
    "Subscription",
    "TxnStatus",
]
