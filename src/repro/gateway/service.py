"""Gateway session service — the layer between API handlers and replicas.

The service owns everything stateful about serving clients:

* **submission** — admission control and per-client token buckets
  (:mod:`repro.gateway.ratelimit`), then server-side batching: client
  submissions accumulate for a short window (or until ``max_batch``)
  and travel to every replica as one ``ClientSubmitBatch`` frame —
  the client-plane sibling of the message plane's VoteBatch discipline
  (a singleton flush degenerates to the bare ``ClientSubmit``);
* **commit tracking** — commit acks from all replicas are correlated
  through the shared :class:`~repro.net.client.AckCorrelator`; a
  transaction is *committed* once ``ack_quorum`` = f+1 distinct
  replicas acked it (at least one honest replica executed it), which
  stamps the gateway-level latency sample and fans a commit event out
  to every WebSocket subscriber;
* **subscriptions** — bounded per-subscriber queues with slow-consumer
  eviction: a subscriber that cannot drain its queue is cut loose
  (with a final eviction notice) rather than allowed to grow gateway
  memory without bound;
* **reads** — executed state and chain history served from replica
  ``SnapshotRequest`` replies, *without touching consensus*: the
  service keeps the freshest snapshot per replica, picks the digest
  supported by the most replicas (ties to the longest chain), and
  replays it once into a :class:`~repro.smr.kvstore.KVStore` that
  point-reads are answered from.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.config import repro_config
from repro.gateway.ratelimit import AdmissionController
from repro.metrics.smr_trackers import nearest_rank_percentiles
from repro.multishot.batching import AdaptiveBatchPolicy
from repro.net.client import AckCorrelator, ReplicaPool
from repro.net.codec import CollectReply, CommitAck
from repro.obs import CommitPathTracer, MetricsRegistry, items_to_dict
from repro.smr.mempool import Transaction
from repro.verification.audit import replay_chain

#: Queue sentinel delivered to a subscriber that fell too far behind.
EVICTED = object()

#: Counter names the gateway maintains (``gateway.`` namespace on the
#: registry; bare names through the :class:`_RegistryCounters` facade).
GATEWAY_COUNTERS = (
    "submitted",
    "committed",
    "rejected_rate",
    "rejected_admission",
    "duplicates",
    "flushes",
    "flushed_txns",
    "events_delivered",
    "subscribers_evicted",
    "snapshot_refreshes",
)


class _RegistryCounters:
    """Dict-shaped view over registry counters.

    The gateway's metrics used to live in a plain dict; the call sites
    (``self.counters["submitted"] += 1``) are kept intact while the
    values now live on the shared :class:`MetricsRegistry`, so one
    snapshot carries everything the service measures.
    """

    def __init__(self, registry: MetricsRegistry, names, prefix: str = "gateway.") -> None:
        self._registry = registry
        self._prefix = prefix
        self._names = tuple(names)
        for name in self._names:
            registry.counter(prefix + name)

    def __getitem__(self, name: str) -> int:
        return int(self._registry.counter(self._prefix + name).value)

    def __setitem__(self, name: str, value: float) -> None:
        self._registry.counter(self._prefix + name).set(float(value))

    def keys(self):
        return iter(self._names)

    def __iter__(self):
        return iter(self._names)


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one gateway instance."""

    #: Replica count of the cluster behind the gateway (quorum math).
    n: int
    #: Distinct clients the gateway will hold state for.
    max_clients: int = 4096
    #: Submitted-but-uncommitted cap per client.
    max_inflight_per_client: int = 512
    #: Token-bucket refill rate per client, transactions/second.
    rate: float = 200.0
    #: Token-bucket burst capacity per client.
    burst: float = 50.0
    #: Upper bound on how long a submission may wait for batch-mates
    #: before flushing; the effective window shrinks with the observed
    #: arrival rate (waiting longer than it takes to fill a batch buys
    #: nothing but latency).
    batch_window: float = 0.005
    #: Upper bound of the adaptive flush threshold: flush at the latest
    #: once this many submissions are buffered.
    max_batch: int = 64
    #: Per-subscriber event queue depth before eviction.
    subscriber_queue: int = 256
    #: Seconds between background snapshot refreshes (0 = on demand).
    snapshot_interval: float = 0.5

    @property
    def ack_quorum(self) -> int:
        """f+1: at least one honest replica executed the transaction."""
        return (self.n - 1) // 3 + 1


@dataclass
class TxnStatus:
    """Gateway-side lifecycle of one submitted transaction."""

    txid: str
    client_id: str
    submitted_at: float
    acks: set[int] = field(default_factory=set)
    slot: int | None = None
    committed_at: float | None = None

    @property
    def committed(self) -> bool:
        return self.committed_at is not None

    @property
    def latency(self) -> float | None:
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at


class Subscription:
    """One commit-event subscriber with a bounded queue.

    ``deliver`` never blocks: a full queue marks the subscriber evicted
    and replaces its oldest undelivered event with the :data:`EVICTED`
    sentinel, so the consumer always learns *why* its stream ended.
    """

    def __init__(self, maxsize: int) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(maxsize)
        self.evicted = False
        self.closed = False

    def deliver(self, event: object) -> bool:
        if self.evicted or self.closed:
            return False
        try:
            self.queue.put_nowait(event)
            return True
        except asyncio.QueueFull:
            self.evicted = True
            try:
                self.queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - maxsize > 0
                pass
            self.queue.put_nowait(EVICTED)
            return False

    async def next_event(self) -> object:
        """The next event, or :data:`EVICTED` once the queue overflowed."""
        return await self.queue.get()


@dataclass(frozen=True)
class StateView:
    """One answered read: where the value came from."""

    value: object
    found: bool
    tip_slot: int
    chain_length: int
    supported_by: int
    replica: int


class GatewayService:
    """Session service over a :class:`~repro.net.client.ReplicaPool`."""

    def __init__(self, pool: ReplicaPool, config: GatewayConfig, clock=time.monotonic) -> None:
        self.pool = pool
        self.config = config
        self._clock = clock
        self.admission = AdmissionController(
            max_clients=config.max_clients,
            max_inflight_per_client=config.max_inflight_per_client,
            rate=config.rate,
            burst=config.burst,
            clock=clock,
        )
        self.correlator = AckCorrelator()
        self.correlator.track_nodes(pool.live)
        self.txns: dict[str, TxnStatus] = {}
        self.subscriptions: list[Subscription] = []
        self._buffer: list[Transaction] = []
        #: REPRO_NO_BATCH=1 disables ClientSubmitBatch coalescing here
        #: exactly as it disables VoteBatch coalescing in the engines —
        #: the ablation knob means one thing repo-wide.
        self._batching = not repro_config().no_batch
        #: Same deterministic controller as the message plane, over
        #: submissions per flush: the threshold sits at ``max_batch``
        #: under sustained load and decays when flushes run light.
        self._batch_policy = AdaptiveBatchPolicy(
            lo=min(2, config.max_batch), hi=config.max_batch, start=config.max_batch
        )
        self._last_arrival: float | None = None
        self._gap_ewma: float | None = None
        self._flush_handle: asyncio.TimerHandle | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._snapshot_task: asyncio.Task | None = None
        self._snapshots: dict[int, CollectReply] = {}
        self._chosen: CollectReply | None = None
        self._chosen_support = 0
        self._replay_cache_key: tuple[str, int] | None = None
        self._replay_store = None
        self.started_at: float | None = None
        # Monotonic counters the metrics endpoint reports, living on
        # the gateway's own registry (``/v1/metrics`` is a view of it).
        self.registry = MetricsRegistry(clock=clock)
        self.counters = _RegistryCounters(self.registry, GATEWAY_COUNTERS)
        cfg = repro_config()
        #: Gateway end of the commit-path trace: admission → quorum ack.
        #: Same deterministic txid sampling as the replica tracers, so
        #: a sampled transaction is sampled at every hop.
        self.tracer = CommitPathTracer(
            sample_every=0 if cfg.no_obs else 16, clock=clock, terminal="ack"
        )
        pool.on_ack = self._on_ack

    # -- lifecycle ------------------------------------------------------------

    async def start(self, *, start_consensus: bool = True) -> None:
        """Bind to the running loop; optionally start the cluster."""
        self._loop = asyncio.get_running_loop()
        self.started_at = self._clock()
        if start_consensus:
            self.pool.start_run()
        if self.config.snapshot_interval > 0:
            self._snapshot_task = asyncio.ensure_future(self._snapshot_loop())

    async def stop(self) -> None:
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            self._snapshot_task = None
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        self._flush()
        for sub in self.subscriptions:
            sub.closed = True

    # -- submission path ------------------------------------------------------

    def submit(self, client_id: str, txn: Transaction) -> TxnStatus:
        """Admit, rate-limit, dedup, and batch one client submission.

        Raises :class:`~repro.gateway.ratelimit.AdmissionDenied`,
        :class:`~repro.gateway.ratelimit.RateLimited`, or
        :class:`DuplicateTransaction`; on success the transaction is
        queued for the next batch flush and its status is tracked until
        quorum commit.
        """
        if txn.txid in self.txns:
            self.counters["duplicates"] += 1
            raise DuplicateTransaction(f"transaction {txn.txid!r} was already submitted")
        state = self.admission.check_submit(client_id)
        now = self._clock()
        status = TxnStatus(txid=txn.txid, client_id=client_id, submitted_at=now)
        self.txns[txn.txid] = status
        self.correlator.record_submit(txn.txid, now)
        state.inflight += 1
        state.submitted += 1
        state.txids.add(txn.txid)
        self.counters["submitted"] += 1
        self.tracer.record(txn.txid, "admit", at=now)
        if not self._batching:
            # Batching disabled: every submission travels alone, now.
            self.pool.submit(txn)
            self.tracer.record(txn.txid, "submit")
            self.counters["flushes"] += 1
            self.counters["flushed_txns"] += 1
            return status
        if self._last_arrival is not None:
            gap = max(now - self._last_arrival, 0.0)
            self._gap_ewma = gap if self._gap_ewma is None else 0.8 * self._gap_ewma + 0.2 * gap
        self._last_arrival = now
        self._buffer.append(txn)
        if len(self._buffer) >= self._batch_policy.limit:
            self._flush()
        elif self._flush_handle is None and self._loop is not None:
            self._flush_handle = self._loop.call_later(self._window(), self._flush)
        return status

    def _window(self) -> float:
        """Arrival-rate-scaled flush deadline, capped at ``batch_window``.

        At the observed inter-arrival gap the buffer needs about
        ``limit × gap`` seconds to fill; waiting longer than that only
        adds latency, so the window shrinks toward it under fast
        arrivals and rests at the configured cap under slow ones.
        """
        if self._gap_ewma is None:
            return self.config.batch_window
        return min(self.config.batch_window, self._batch_policy.limit * self._gap_ewma)

    def _flush(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self.pool.submit_many(batch)
        for txn in batch:
            self.tracer.record(txn.txid, "submit")
        self._batch_policy.observe(len(batch))
        self.counters["flushes"] += 1
        self.counters["flushed_txns"] += len(batch)

    # -- commit path ----------------------------------------------------------

    def _on_ack(self, node_id: int, ack: CommitAck) -> None:
        now = self._clock()
        if self.correlator.record_ack(node_id, ack, now) is None:
            return
        status = self.txns.get(ack.txid)
        if status is None:  # pragma: no cover - correlator already filters
            return
        status.acks.add(node_id)
        if status.slot is None:
            status.slot = ack.slot
        if not status.committed and len(status.acks) >= self.config.ack_quorum:
            status.committed_at = now
            self.tracer.record(status.txid, "ack", at=now)
            self.counters["committed"] += 1
            client = self.admission.clients.get(status.client_id)
            if client is not None and client.inflight > 0:
                client.inflight -= 1
            self._publish(
                {
                    "type": "commit",
                    "txid": status.txid,
                    "slot": status.slot,
                    "acks": len(status.acks),
                    "latency_ms": (now - status.submitted_at) * 1000.0,
                }
            )

    # -- subscriptions --------------------------------------------------------

    def subscribe(self) -> Subscription:
        sub = Subscription(self.config.subscriber_queue)
        self.subscriptions.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        sub.closed = True
        if sub in self.subscriptions:
            self.subscriptions.remove(sub)

    def _publish(self, event: dict) -> None:
        evicted = [sub for sub in self.subscriptions if not sub.deliver(event)]
        for sub in evicted:
            if sub.evicted:
                self.counters["subscribers_evicted"] += 1
            self.subscriptions.remove(sub)
        self.counters["events_delivered"] += len(self.subscriptions)

    # -- read path ------------------------------------------------------------

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.snapshot_interval)
            try:
                await self.refresh_snapshots()
            except (OSError, ConnectionError):  # pragma: no cover - replica churn
                continue

    async def refresh_snapshots(self, timeout: float | None = None) -> int:
        """Pull a fresh snapshot from every live replica; returns the
        support count of the chosen snapshot."""
        replies = await self.pool.snapshot(timeout)
        self._snapshots.update(replies)
        self.counters["snapshot_refreshes"] += 1
        return self._choose_snapshot()

    def ingest_snapshots(self, replies: dict[int, CollectReply]) -> int:
        """Feed externally collected snapshots (tests, offline replay)."""
        self._snapshots.update(replies)
        return self._choose_snapshot()

    def _choose_snapshot(self) -> int:
        """Pick the snapshot whose state digest has the widest replica
        support; ties break to the longer chain.  With at least f+1
        supporters the digest is vouched for by an honest replica."""
        if not self._snapshots:
            return 0
        support: dict[tuple[str, int], list[CollectReply]] = {}
        for reply in self._snapshots.values():
            support.setdefault((reply.state_digest, len(reply.chain)), []).append(reply)
        (digest, _length), group = max(
            support.items(), key=lambda item: (len(item[1]), item[0][1])
        )
        self._chosen = group[0]
        self._chosen_support = len(group)
        key = (digest, len(self._chosen.chain))
        if key != self._replay_cache_key:
            self._replay_store = replay_chain(tuple(self._chosen.chain))
            self._replay_cache_key = key
        return self._chosen_support

    @property
    def has_snapshot(self) -> bool:
        return self._chosen is not None

    def read_state(self, key: str) -> StateView:
        """Point-read from the replayed majority snapshot."""
        if self._chosen is None or self._replay_store is None:
            raise SnapshotUnavailable("no replica snapshot ingested yet")
        missing = object()
        value = self._replay_store.get(key, missing)
        chain = self._chosen.chain
        return StateView(
            value=None if value is missing else value,
            found=value is not missing,
            tip_slot=chain[-1].slot if chain else 0,
            chain_length=len(chain),
            supported_by=self._chosen_support,
            replica=self._chosen.node_id,
        )

    def chain_history(self, start: int = 0, limit: int = 50) -> dict:
        """Finalized chain summary from the majority snapshot."""
        if self._chosen is None:
            raise SnapshotUnavailable("no replica snapshot ingested yet")
        chain = self._chosen.chain
        blocks = []
        for block in chain:
            if block.slot < start:
                continue
            if len(blocks) >= limit:
                break
            payload = block.payload if isinstance(block.payload, tuple) else ()
            blocks.append(
                {
                    "slot": block.slot,
                    "digest": block.digest,
                    "parent": block.parent,
                    "txids": [txn.txid for txn in payload if isinstance(txn, Transaction)],
                }
            )
        return {
            "height": len(chain),
            "tip": chain[-1].digest if chain else None,
            "supported_by": self._chosen_support,
            "blocks": blocks,
        }

    # -- introspection --------------------------------------------------------

    def txn_view(self, txid: str) -> dict | None:
        status = self.txns.get(txid)
        if status is None:
            return None
        latency = status.latency
        return {
            "txid": status.txid,
            "status": "committed" if status.committed else "pending",
            "acks": len(status.acks),
            "quorum": self.config.ack_quorum,
            "slot": status.slot,
            "latency_ms": None if latency is None else latency * 1000.0,
        }

    def latency_percentiles(self) -> dict[int, float]:
        """Gateway-level commit latency (submit → quorum ack), ms."""
        samples = [
            status.latency for status in self.txns.values() if status.latency is not None
        ]
        return {p: v * 1000.0 for p, v in nearest_rank_percentiles(samples).items()}

    def metrics(self) -> dict:
        pending = self.counters["submitted"] - self.counters["committed"]
        # Derived values live on the registry as gauges so a registry
        # snapshot is self-contained; the endpoint's flat keys are kept
        # as a stable view over it.
        self.registry.gauge("gateway.pending").set(pending)
        self.registry.gauge("gateway.clients").set(len(self.admission.clients))
        self.registry.gauge("gateway.subscribers").set(len(self.subscriptions))
        self.registry.gauge("gateway.replicas_live").set(len(self.pool.live))
        self.tracer.publish(self.registry, prefix="gateway.trace.")
        return {
            **{name: self.counters[name] for name in self.counters},
            "pending": pending,
            "clients": len(self.admission.clients),
            "subscribers": len(self.subscriptions),
            "replicas_live": len(self.pool.live),
            "latency_ms": {str(p): v for p, v in self.latency_percentiles().items()},
            "uptime_seconds": 0.0
            if self.started_at is None
            else self._clock() - self.started_at,
            "registry": self.registry.snapshot(),
        }

    async def cluster_metrics(self, timeout: float | None = None) -> dict:
        """Scrape every live replica in-band and aggregate per replica.

        The ``/v1/cluster/metrics`` payload: one MetricsRequest round
        over the client ports, each reply's sorted items decoded back
        into a flat name → value map, plus the gateway's own registry
        snapshot so one response covers the whole deployment.
        """
        replies = await self.pool.scrape(timeout)
        return {
            "replicas": {
                str(node_id): {
                    "events": reply.events,
                    "metrics": items_to_dict(reply.items),
                }
                for node_id, reply in sorted(replies.items())
            },
            "replicas_live": len(self.pool.live),
            "gateway": self.registry.snapshot(),
        }

    def health(self) -> dict:
        live = len(self.pool.live)
        quorum_alive = live >= self.config.ack_quorum
        return {
            "status": "ok" if quorum_alive else "degraded",
            "replicas_live": live,
            "replicas_total": self.config.n,
            "ack_quorum": self.config.ack_quorum,
            "has_snapshot": self.has_snapshot,
        }


class DuplicateTransaction(Exception):
    """A txid the gateway already tracks was submitted again."""


class SnapshotUnavailable(Exception):
    """The read path has no replica snapshot to serve from yet."""
