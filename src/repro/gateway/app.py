"""The gateway's handler layer: HTTP/WS routes over the session service.

:class:`GatewayServer` binds an asyncio TCP server and maps requests
onto :class:`~repro.gateway.service.GatewayService` calls.  The routes:

====== ============================ =======================================
verb   path                         meaning
====== ============================ =======================================
POST   ``/v1/transactions``         submit one transaction (202 Accepted)
GET    ``/v1/transactions/<txid>``  commit status of one transaction
GET    ``/v1/state/<key>``          executed-state read (snapshot path)
GET    ``/v1/chain``                finalized chain summary
GET    ``/v1/health``               liveness/quorum summary
GET    ``/v1/metrics``              registry snapshot + latency percentiles
GET    ``/v1/cluster/metrics``      in-band scrape of every live replica
GET    ``/v1/ws``                   WebSocket commit-event subscription
====== ============================ =======================================

The pre-versioned bare paths (``/transactions``, ``/state/<key>``,
``/chain``, ``/health``, ``/metrics``) survive as deprecated aliases:
they are rewritten onto the ``/v1`` routes and answered with a
``Deprecation: true`` header.  New clients must use ``/v1``.

Every rejection is a structured JSON error envelope; rate-limited
submissions carry a ``Retry-After`` header (429), capacity rejections a
503, duplicate txids a 409.  Clients identify themselves with an
``x-client-id`` header (falling back to the peer address), which is the
key admission control and rate limiting operate on.

A WebSocket subscriber that cannot keep up with the commit stream is
*evicted*: the service replaces its oldest undelivered event with a
sentinel and the handler closes the socket with code 1013
("try again later") — backpressure ends at the gateway, never inside
the consensus cluster.
"""

from __future__ import annotations

import asyncio
import json

from repro.gateway.http import (
    CLOSE_TRY_AGAIN_LATER,
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    ProtocolError,
    Request,
    encode_close_frame,
    encode_ws_frame,
    error_payload,
    read_request,
    read_ws_frame,
    render_response,
    websocket_handshake_response,
)
from repro.gateway.ratelimit import AdmissionDenied, RateLimited
from repro.gateway.service import (
    EVICTED,
    DuplicateTransaction,
    GatewayService,
    SnapshotUnavailable,
)
from repro.smr.mempool import Transaction

#: KVStore operations a client may submit through the gateway.
ALLOWED_OPS = ("set", "del", "incr", "noop")

#: Bare-path roots from the pre-versioned API, still answered as
#: aliases of their ``/v1`` successors.  Alias responses carry a
#: ``Deprecation: true`` header (draft-ietf-httpapi-deprecation-header
#: shape) so callers can find themselves before the aliases go away.
DEPRECATED_ALIAS_ROOTS = ("/transactions", "/state", "/chain", "/health", "/metrics")


def alias_to_v1(path: str) -> str | None:
    """The ``/v1`` path a deprecated bare path maps to, or ``None``."""
    for root in DEPRECATED_ALIAS_ROOTS:
        if path == root or path.startswith(root + "/"):
            return "/v1" + path
    return None


def _mark_deprecated(response: bytes) -> bytes:
    """Inject the ``Deprecation`` header into a rendered response."""
    head, sep, body = response.partition(b"\r\n\r\n")
    return head + b"\r\nDeprecation: true" + sep + body


def parse_transaction(payload: object) -> Transaction:
    """Validate one submission body into a Transaction.

    Expected shape: ``{"txid": str, "op": [kind, ...args]}`` with a
    kind from :data:`ALLOWED_OPS`.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("submission body must be a JSON object")
    txid = payload.get("txid")
    if not isinstance(txid, str) or not txid or len(txid) > 128:
        raise ProtocolError("'txid' must be a non-empty string of at most 128 chars")
    op = payload.get("op")
    if not isinstance(op, list) or not op or not isinstance(op[0], str):
        raise ProtocolError("'op' must be a non-empty array starting with the op kind")
    if op[0] not in ALLOWED_OPS:
        raise ProtocolError(f"unknown op kind {op[0]!r}; allowed: {', '.join(ALLOWED_OPS)}")
    return Transaction(txid=txid, op=tuple(op))


class GatewayServer:
    """Asyncio TCP server exposing the gateway API."""

    def __init__(self, service: GatewayService, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection loop ------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_id = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(
                        render_response(
                            400,
                            error_payload("bad_request", str(exc)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.wants_websocket:
                    await self._serve_websocket(request, reader, writer, peer_id)
                    break
                if request.path.split("?", 1)[0] == "/v1/cluster/metrics":
                    # The one route that must await the cluster (an
                    # in-band MetricsRequest round over the client
                    # ports), so it bypasses the sync dispatch table.
                    response = await self._cluster_metrics(request)
                else:
                    response = self._dispatch(request, peer_id)
                writer.write(response)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    def _client_id(self, request: Request, peer_id: str) -> str:
        return request.headers.get("x-client-id", peer_id)

    # -- HTTP routes ----------------------------------------------------------

    def _dispatch(self, request: Request, peer_id: str) -> bytes:
        path, sep, query = request.path.partition("?")
        alias = alias_to_v1(path)
        if alias is not None:
            request = Request(
                method=request.method,
                path=alias + sep + query,
                headers=request.headers,
                body=request.body,
            )
        response = self._dispatch_versioned(request, peer_id)
        if alias is not None:
            response = _mark_deprecated(response)
        return response

    def _dispatch_versioned(self, request: Request, peer_id: str) -> bytes:
        try:
            return self._route(request, peer_id)
        except ProtocolError as exc:
            return render_response(400, error_payload("bad_request", str(exc)))
        except RateLimited as exc:
            return render_response(
                429,
                error_payload("rate_limited", str(exc), retry_after=exc.retry_after),
                extra_headers={"Retry-After": f"{exc.retry_after:.3f}"},
            )
        except AdmissionDenied as exc:
            return render_response(503, error_payload(exc.code, str(exc)))
        except DuplicateTransaction as exc:
            return render_response(409, error_payload("duplicate_txid", str(exc)))
        except SnapshotUnavailable as exc:
            return render_response(503, error_payload("snapshot_unavailable", str(exc)))

    def _route(self, request: Request, peer_id: str) -> bytes:
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/v1/transactions" and method == "POST":
            return self._submit(request, peer_id)
        if path.startswith("/v1/transactions/") and method == "GET":
            return self._txn_status(path.removeprefix("/v1/transactions/"))
        if path.startswith("/v1/state/") and method == "GET":
            return self._read_state(path.removeprefix("/v1/state/"))
        if path == "/v1/chain" and method == "GET":
            return render_response(200, self.service.chain_history())
        if path == "/v1/health" and method == "GET":
            return render_response(200, self.service.health())
        if path == "/v1/metrics" and method == "GET":
            return render_response(200, self.service.metrics())
        if path in ("/v1/transactions", "/v1/chain", "/v1/health", "/v1/metrics"):
            return render_response(
                405, error_payload("method_not_allowed", f"{method} not allowed on {path}")
            )
        return render_response(404, error_payload("not_found", f"no route for {path}"))

    async def _cluster_metrics(self, request: Request) -> bytes:
        if request.method != "GET":
            return render_response(
                405,
                error_payload(
                    "method_not_allowed",
                    f"{request.method} not allowed on /v1/cluster/metrics",
                ),
            )
        try:
            payload = await self.service.cluster_metrics(timeout=2.0)
        except (OSError, ConnectionError, asyncio.TimeoutError):
            return render_response(
                503, error_payload("scrape_failed", "could not scrape the replica cluster")
            )
        return render_response(200, payload)

    def _submit(self, request: Request, peer_id: str) -> bytes:
        txn = parse_transaction(request.json())
        status = self.service.submit(self._client_id(request, peer_id), txn)
        return render_response(
            202,
            {
                "txid": status.txid,
                "status": "pending",
                "quorum": self.service.config.ack_quorum,
            },
        )

    def _txn_status(self, txid: str) -> bytes:
        view = self.service.txn_view(txid)
        if view is None:
            return render_response(
                404, error_payload("unknown_txid", f"transaction {txid!r} was never submitted")
            )
        return render_response(200, view)

    def _read_state(self, key: str) -> bytes:
        view = self.service.read_state(key)
        if not view.found:
            return render_response(
                404,
                error_payload(
                    "unknown_key",
                    f"key {key!r} is absent from the executed state",
                    chain_length=view.chain_length,
                    supported_by=view.supported_by,
                ),
            )
        return render_response(
            200,
            {
                "key": key,
                "value": view.value,
                "tip_slot": view.tip_slot,
                "chain_length": view.chain_length,
                "supported_by": view.supported_by,
                "replica": view.replica,
            },
        )

    # -- WebSocket subscription -----------------------------------------------

    async def _serve_websocket(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer_id: str,
    ) -> None:
        writer.write(websocket_handshake_response(request.headers["sec-websocket-key"]))
        await writer.drain()
        subscription = self.service.subscribe()
        control = asyncio.ensure_future(self._ws_control_loop(reader, writer))
        try:
            while not control.done():
                getter = asyncio.ensure_future(subscription.next_event())
                done, _pending = await asyncio.wait(
                    {getter, control}, return_when=asyncio.FIRST_COMPLETED
                )
                if getter not in done:
                    getter.cancel()
                    break  # peer closed or died; stop streaming
                event = getter.result()
                if event is EVICTED:
                    writer.write(encode_close_frame(CLOSE_TRY_AGAIN_LATER, "slow consumer"))
                    await writer.drain()
                    break
                writer.write(
                    encode_ws_frame(
                        OP_TEXT,
                        json.dumps(event, separators=(",", ":"), sort_keys=True).encode("utf-8"),
                    )
                )
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self.service.unsubscribe(subscription)
            control.cancel()

    async def _ws_control_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer pings and notice the peer closing; returns on close."""
        while True:
            frame = await read_ws_frame(reader)
            if frame is None:
                return
            opcode, payload = frame
            if opcode == OP_PING:
                writer.write(encode_ws_frame(OP_PONG, payload))
                await writer.drain()
            elif opcode == OP_CLOSE:
                writer.write(encode_close_frame(1000))
                await writer.drain()
                return
