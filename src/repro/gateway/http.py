"""Minimal HTTP/1.1 + WebSocket plumbing on asyncio streams.

The container deliberately carries no third-party web stack, so the
gateway's handler layer speaks just enough of both protocols itself:

* HTTP/1.1 with keep-alive, ``Content-Length`` bodies, and JSON
  responses — the five verbs/routes the gateway exposes need nothing
  more (no chunked encoding, no multipart);
* RFC 6455 WebSockets: the SHA-1/GUID accept handshake, client-masked
  frame decoding, server frame encoding, and the TEXT/PING/PONG/CLOSE
  opcodes the commit-subscription stream uses.

Both the server (:mod:`repro.gateway.app`) and the clients (the load
generator, the example script, the tests) build on this module, so the
two ends of the wire cannot drift apart.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field

#: RFC 6455 §1.3 — the fixed GUID concatenated to Sec-WebSocket-Key.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Close code sent to a slow consumer (RFC 6455 "try again later").
CLOSE_TRY_AGAIN_LATER = 1013

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """The peer sent bytes this minimal implementation rejects."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    def json(self) -> object:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    @property
    def wants_websocket(self) -> bool:
        return (
            self.headers.get("upgrade", "").lower() == "websocket"
            and "sec-websocket-key" in self.headers
        )


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request head exceeds the stream limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(f"request head exceeds {MAX_HEADER_BYTES} bytes")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise ProtocolError(f"malformed request line {lines[0]!r}") from exc
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(f"request body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = await reader.readexactly(length) if length else b""
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def render_response(
    status: int,
    payload: object,
    *,
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one JSON response (the gateway speaks only JSON)."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def error_payload(code: str, message: str, **details) -> dict:
    """The gateway's structured-error envelope."""
    return {"error": {"code": code, "message": message, **details}}


# -- WebSocket framing --------------------------------------------------------


def websocket_accept_value(key: str) -> str:
    """RFC 6455 §4.2.2 step 5.4: Sec-WebSocket-Accept from the key."""
    digest = hashlib.sha1((key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("ascii")


def websocket_handshake_response(key: str) -> bytes:
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept_value(key)}\r\n\r\n"
    ).encode("latin-1")


def encode_ws_frame(opcode: int, payload: bytes, *, mask: bool = False) -> bytes:
    """One WebSocket frame, FIN set (the gateway never fragments)."""
    head = bytearray([0x80 | opcode])
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def read_ws_frame(reader: asyncio.StreamReader) -> tuple[int, bytes] | None:
    """One (opcode, payload) frame; ``None`` on a closed connection."""
    try:
        head = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    try:
        if length == 126:
            length = struct.unpack(">H", await reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack(">Q", await reader.readexactly(8))[0]
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"websocket frame of {length} bytes is too large")
        key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


def encode_close_frame(code: int, reason: str = "", *, mask: bool = False) -> bytes:
    payload = struct.pack(">H", code) + reason.encode("utf-8")
    return encode_ws_frame(OP_CLOSE, payload, mask=mask)


# -- client helpers -----------------------------------------------------------


@dataclass
class HTTPResponse:
    """One parsed HTTP response (client side)."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> object:
        return json.loads(self.body.decode("utf-8")) if self.body else None


class HTTPClient:
    """A keep-alive HTTP/1.1 client for one gateway connection.

    The load generator multiplexes many *logical* clients over a few of
    these (file-descriptor budget), distinguishing them with the
    ``x-client-id`` header the gateway keys its buckets on.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(self.host, self.port)

    async def request(
        self,
        method: str,
        path: str,
        *,
        payload: object = None,
        headers: dict[str, str] | None = None,
    ) -> HTTPResponse:
        if self.reader is None or self.writer is None:
            await self.connect()
        assert self.reader is not None and self.writer is not None
        body = b""
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
            "Connection: keep-alive",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self.writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await self.writer.drain()
        head = await self.reader.readuntil(b"\r\n\r\n")
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        status = int(status_line.split(" ", 2)[1])
        resp_headers: dict[str, str] = {}
        for line in header_lines:
            if line:
                name, _, value = line.partition(":")
                resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0") or "0")
        resp_body = await self.reader.readexactly(length) if length else b""
        return HTTPResponse(status=status, headers=resp_headers, body=resp_body)

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.reader = self.writer = None


@dataclass
class WSClient:
    """A WebSocket client for the gateway's commit-subscription stream."""

    host: str
    port: int
    reader: asyncio.StreamReader | None = None
    writer: asyncio.StreamWriter | None = None
    close_code: int | None = None
    close_reason: str = ""
    headers: dict[str, str] = field(default_factory=dict)

    async def connect(self, path: str = "/v1/ws") -> None:
        self.reader, self.writer = await asyncio.open_connection(self.host, self.port)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        lines = [
            f"GET {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Upgrade: websocket",
            "Connection: Upgrade",
            f"Sec-WebSocket-Key: {key}",
            "Sec-WebSocket-Version: 13",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        self.writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await self.writer.drain()
        head = await self.reader.readuntil(b"\r\n\r\n")
        status_line = head.decode("latin-1").split("\r\n", 1)[0]
        if " 101 " not in status_line:
            raise ProtocolError(f"websocket handshake rejected: {status_line!r}")
        # Header names are case-insensitive but the base64 accept value
        # is not — matching the raw value in the head covers both.
        if websocket_accept_value(key).encode("latin-1") not in head:
            raise ProtocolError("websocket handshake returned a bad accept value")

    async def next_json(self) -> object | None:
        """The next TEXT payload as JSON; ``None`` once the peer closed
        (``close_code``/``close_reason`` record why)."""
        assert self.reader is not None and self.writer is not None
        while True:
            frame = await read_ws_frame(self.reader)
            if frame is None:
                return None
            opcode, payload = frame
            if opcode == OP_TEXT:
                return json.loads(payload.decode("utf-8"))
            if opcode == OP_PING:
                self.writer.write(encode_ws_frame(OP_PONG, payload, mask=True))
                await self.writer.drain()
            elif opcode == OP_CLOSE:
                if len(payload) >= 2:
                    self.close_code = struct.unpack(">H", payload[:2])[0]
                    self.close_reason = payload[2:].decode("utf-8", "replace")
                self.writer.write(encode_close_frame(1000, mask=True))
                await self.writer.drain()
                return None

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.reader = self.writer = None
