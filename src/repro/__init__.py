"""TetraBFT — unauthenticated, responsive BFT consensus (PODC 2024).

A from-scratch Python reproduction of *TetraBFT: Reducing Latency of
Unauthenticated, Responsive BFT Consensus* (Yu, Losa, Wang), including
the single-shot protocol, the pipelined multi-shot protocol, an SMR
layer, the Table 1 baseline protocols, a partially synchronous
discrete-event network, Byzantine adversaries, and a model-checking
substrate reproducing the paper's TLA+ verification.

Quick start::

    from repro import ProtocolConfig, Simulation, TetraBFTNode

    config = ProtocolConfig.create(4)           # n=4, f=1
    sim = Simulation()                          # synchronous, delta=1
    for i in range(4):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"v{i}"))
    sim.run_until_all_decided()
    print(sim.metrics.latency.decision_values)  # one value, 5 delays

See README.md for the architecture tour, DESIGN.md for the system
inventory and experiment index, and EXPERIMENTS.md for measured-vs-
paper results.
"""

from repro.core import (
    GENESIS_VIEW,
    Phase,
    ProtocolConfig,
    TetraBFTNode,
    VoteStorage,
)
from repro.errors import (
    ConfigurationError,
    ProtocolViolation,
    QuorumSystemError,
    ReproError,
    SimulationError,
    VerificationError,
)
from repro.multishot import Block, MultiShotConfig, MultiShotNode
from repro.quorums import (
    FBAQuorumSystem,
    QuorumSystem,
    SliceConfig,
    ThresholdQuorumSystem,
)
from repro.sim import (
    PartialSynchronyPolicy,
    Simulation,
    SynchronousDelays,
    UniformRandomDelays,
)
from repro.smr import (
    ConsensusEngine,
    KVStore,
    Mempool,
    Replica,
    Transaction,
    engine_factory,
)

__version__ = "1.0.0"

__all__ = [
    "Block",
    "ConfigurationError",
    "ConsensusEngine",
    "FBAQuorumSystem",
    "GENESIS_VIEW",
    "KVStore",
    "Mempool",
    "MultiShotConfig",
    "MultiShotNode",
    "PartialSynchronyPolicy",
    "Phase",
    "ProtocolConfig",
    "ProtocolViolation",
    "QuorumSystem",
    "QuorumSystemError",
    "Replica",
    "ReproError",
    "Simulation",
    "SimulationError",
    "SliceConfig",
    "SynchronousDelays",
    "TetraBFTNode",
    "ThresholdQuorumSystem",
    "Transaction",
    "UniformRandomDelays",
    "VerificationError",
    "VoteStorage",
    "__version__",
    "engine_factory",
]
