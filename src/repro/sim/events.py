"""Deterministic discrete-event scheduler.

The simulator that drives every protocol run in this library.  It is a
classic event-heap design with three properties the reproduction relies
on:

* **Determinism** — events at equal timestamps fire in insertion order
  (a monotone sequence number breaks ties), so a run is a pure function
  of its inputs and seed.  Every test and benchmark is replayable.
* **Cancellation** — timer events can be cancelled in O(1) (lazy
  deletion), which the protocol uses when a view ends before its
  timeout fires.
* **Throughput** — the heap stores plain ``(time, seq, event)`` tuples,
  so ordering is resolved by C-level tuple comparison (``seq`` is
  unique, the event payload is never compared), and the payload is a
  ``__slots__`` object rather than a dataclass.  Callbacks may carry an
  ``args`` tuple so hot paths (message delivery) can schedule a shared
  bound method instead of allocating a closure per message.  A live
  counter makes :meth:`EventScheduler.pending` O(1).

Time is a float in abstract "delay units"; protocol code treats the
network's δ as the unit, which is exactly how the paper counts latency
("message delays").

``EventScheduler.run`` accepts a ``stop_check_interval`` so callers with
an expensive ``stop_when`` predicate (e.g. "have all n nodes decided?",
an O(n) scan) can poll it every k events instead of after every single
event.  The default of 1 preserves exact stop timing; larger intervals
trade a bounded amount of overshoot (at most k-1 extra events fire) for
not paying the predicate on every event.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

from repro.errors import SimulationError

EventCallback = Callable[..., None]


class _Event:
    """Heap payload: mutable state of one scheduled callback.

    Never compared — the enclosing ``(time, seq, event)`` tuple orders
    on the scalars alone, so no ``__lt__`` dispatch happens during heap
    operations.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: EventCallback,
        args: tuple,
        label: str,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label


class EventHandle:
    """Opaque handle returned by :meth:`EventScheduler.schedule`.

    Supports :meth:`cancel`; cancelling an already-fired or
    already-cancelled event is a harmless no-op.
    """

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: _Event, scheduler: "EventScheduler") -> None:
        self._event = event
        self._scheduler = scheduler

    def cancel(self) -> None:
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if not event.fired:
                self._scheduler._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventScheduler:
    """Priority-queue event loop with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, _Event]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_fired = 0
        self._live = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (for budget checks)."""
        return self._events_fired

    def credit_events(self, extra: int) -> None:
        """Count ``extra`` logical events against :attr:`events_fired`.

        The network coalesces same-tick deliveries into one physical
        heap event; crediting the collapsed deliveries here keeps
        ``events_fired`` measuring *logical* work, so throughput figures
        stay comparable across batched and unbatched runs.  Credits are
        intentionally invisible to ``run``'s ``max_events`` budget,
        which counts physical callbacks via its own local counter.
        """
        self._events_fired += extra

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        label: str = "",
        args: tuple = (),
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Passing positional arguments through ``args`` lets callers reuse
        one bound method for many events instead of allocating a closure
        per event — the message-delivery hot path depends on this.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(self._now + delay, next(self._counter), callback, args, label)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self._live += 1
        return EventHandle(event, self)

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = "", args: tuple = ()
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback, label=label, args=args)

    def pending(self) -> int:
        """Number of live (non-cancelled, non-fired) events still queued.

        O(1): a counter is maintained across schedule / cancel / fire
        rather than scanning the heap.
        """
        return self._live

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` when drained."""
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            if time < self._now:
                raise SimulationError("event heap yielded a past event")
            self._now = time
            event.fired = True
            self._live -= 1
            self._events_fired += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
        stop_check_interval: int = 1,
    ) -> float:
        """Run events until drained / deadline / predicate / budget.

        ``until`` is an absolute time: events scheduled strictly after
        it remain queued and ``now`` is advanced to ``until``.
        ``stop_when`` is evaluated every ``stop_check_interval`` fired
        events (default: after every event, the exact-stop behaviour).
        A larger interval amortizes an expensive predicate over k events
        at the cost of firing at most k-1 events past the stop
        condition.  Returns the simulation time at which the run
        stopped.
        """
        if stop_check_interval < 1:
            raise SimulationError(f"stop_check_interval must be >= 1, got {stop_check_interval}")
        fired = 0
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                # With stop_check_interval > 1 the stop condition may
                # have become true inside the unpolled window; give the
                # predicate a final say before declaring a livelock.
                if stop_when is not None and stop_when():
                    return self._now
                raise SimulationError(
                    f"exceeded event budget of {max_events} events; "
                    "likely a livelock in the protocol under test"
                )
            self.step()
            fired += 1
            if stop_when is not None and fired % stop_check_interval == 0 and stop_when():
                return self._now
        if until is not None and self._now < until:
            self._now = until
        return self._now
