"""Deterministic discrete-event scheduler.

The simulator that drives every protocol run in this library.  It is a
classic event-heap design with two properties the reproduction relies
on:

* **Determinism** — events at equal timestamps fire in insertion order
  (a monotone sequence number breaks ties), so a run is a pure function
  of its inputs and seed.  Every test and benchmark is replayable.
* **Cancellation** — timer events can be cancelled in O(1) (lazy
  deletion), which the protocol uses when a view ends before its
  timeout fires.

Time is a float in abstract "delay units"; protocol code treats the
network's δ as the unit, which is exactly how the paper counts latency
("message delays").
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventScheduler.schedule`.

    Supports :meth:`cancel`; cancelling an already-fired or
    already-cancelled event is a harmless no-op.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventScheduler:
    """Priority-queue event loop with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (for budget checks)."""
        return self._events_fired

    def schedule(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _ScheduledEvent(
            time=self._now + delay,
            seq=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback, label=label)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap yielded a past event")
            self._now = event.time
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        """Run events until drained / deadline / predicate / budget.

        ``until`` is an absolute time: events scheduled strictly after
        it remain queued and ``now`` is advanced to ``until``.
        ``stop_when`` is evaluated after every event.  Returns the
        simulation time at which the run stopped.
        """
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"exceeded event budget of {max_events} events; "
                    "likely a livelock in the protocol under test"
                )
            self.step()
            fired += 1
            if stop_when is not None and stop_when():
                return self._now
        if until is not None and self._now < until:
            self._now = until
        return self._now
