"""Adversarial network schedulers.

Partial synchrony grants the adversary full control of message delivery
before GST and delay control (up to Δ) after it.  These policies let
tests and benches exercise exactly that power deterministically:

* :class:`TargetedDropPolicy` — drop messages matching a predicate
  (e.g. silence a leader's proposals) during a time window;
* :class:`PartitionPolicy` — partition the node set until a heal time;
* :class:`SkewedDelays` — per-link delays chosen adversarially within
  ``[delta_min, delta]``, used by the 9Δ-timeout ablation to create
  the worst-case 2Δ view-entry skew the paper's timeout analysis
  assumes;
* :class:`ScriptedPolicy` — fully scripted per-message fates for
  regression tests that need exact schedules;
* :class:`CrashRecoveryPolicy` — nodes go down and come back on a
  deterministic schedule; messages touching a down node are dropped.
  Used by the scaling evaluation's churn scenario.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.network import DelayPolicy

MessagePredicate = Callable[[float, int, int, object], bool]


@dataclass
class TargetedDropPolicy(DelayPolicy):
    """Drop messages matching ``should_drop`` inside ``[start, end)``.

    Everything else is delegated to ``base`` so the surrounding network
    behaves normally.  Used to crash-fault leaders, censor specific
    message types, or suppress votes from chosen nodes.
    """

    base: DelayPolicy
    should_drop: MessagePredicate
    start: float = 0.0
    end: float = float("inf")

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        in_window = self.start <= send_time < self.end
        if in_window and self.should_drop(send_time, src, dst, message):
            return None
        return self.base.delay(send_time, src, dst, message)


def silence_nodes(node_ids: Iterable[int]) -> MessagePredicate:
    """Predicate dropping every message *sent by* the given nodes (crash)."""
    silenced = frozenset(node_ids)

    def predicate(send_time: float, src: int, dst: int, message: object) -> bool:
        del send_time, dst, message
        return src in silenced

    return predicate


def censor_types(*type_names: str) -> MessagePredicate:
    """Predicate dropping messages whose class name is in ``type_names``."""
    censored = frozenset(type_names)

    def predicate(send_time: float, src: int, dst: int, message: object) -> bool:
        del send_time, src, dst
        return type(message).__name__ in censored

    return predicate


@dataclass
class PartitionPolicy(DelayPolicy):
    """Messages crossing between groups are dropped until ``heal_time``.

    ``groups`` is a list of disjoint node sets; nodes absent from every
    group form an implicit final group.  After ``heal_time`` all
    traffic flows through ``base`` untouched — the moment the paper
    would call GST.
    """

    base: DelayPolicy
    groups: list[frozenset[int]]
    heal_time: float

    def _group_of(self, node: int) -> int:
        for index, group in enumerate(self.groups):
            if node in group:
                return index
        return len(self.groups)

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        if send_time < self.heal_time and self._group_of(src) != self._group_of(dst):
            return None
        return self.base.delay(send_time, src, dst, message)


@dataclass
class SkewedDelays(DelayPolicy):
    """Adversarial within-bound delays: per-destination fixed delays.

    After GST the adversary may still choose any delay in
    ``(0, delta]`` per message.  This policy gives destination ``d``
    the delay ``delta_for.get(d, delta)``, creating the maximal skew in
    when nodes observe quorums — the scenario behind the paper's 9Δ
    timeout budget (2Δ view-entry skew + 6Δ protocol phases).
    """

    delta: float = 1.0
    delta_for: dict[int, float] = field(default_factory=dict)

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        del send_time, src, message
        chosen = self.delta_for.get(dst, self.delta)
        return min(chosen, self.delta)


@dataclass
class CrashRecoveryPolicy(DelayPolicy):
    """Crash/recovery link faults on a deterministic schedule.

    ``downtime`` maps a node id to a list of half-open ``[start, end)``
    intervals during which that node is crashed.  A message whose
    sender *or* receiver is down at send time is dropped; everything
    else is delegated to ``base``.  (Messages already in flight when
    the receiver crashes still deliver — the model charges the fault to
    the link at send time, which keeps the policy stateless and the
    schedule a pure function of its inputs.)

    :meth:`periodic` builds the common churn scenario: each listed node
    crashes for ``outage`` time units every ``period``, optionally
    staggered so the crashes roll through the cluster instead of
    striking simultaneously.
    """

    base: DelayPolicy
    downtime: dict[int, list[tuple[float, float]]]

    def __post_init__(self) -> None:
        for node, intervals in self.downtime.items():
            for start, end in intervals:
                if not start < end:
                    raise ConfigurationError(
                        f"node {node}: downtime interval ({start}, {end}) is empty"
                    )

    @classmethod
    def periodic(
        cls,
        base: DelayPolicy,
        node_ids: Iterable[int],
        period: float,
        outage: float,
        horizon: float,
        stagger: float = 0.0,
        start: float = 0.0,
    ) -> "CrashRecoveryPolicy":
        """Rolling outages: node k is down during
        ``[start + k*stagger + i*period, … + outage)`` for every cycle
        ``i`` up to ``horizon``."""
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if outage <= 0:
            raise ConfigurationError(f"outage must be positive, got {outage}")
        if outage >= period:
            # Overlapping cycles would keep the node down for the whole
            # horizon — a crash with no recovery, not a churn schedule.
            raise ConfigurationError(
                f"outage must be shorter than period, got outage={outage} "
                f"period={period} (the node would never recover)"
            )
        downtime: dict[int, list[tuple[float, float]]] = {}
        for index, node in enumerate(sorted(node_ids)):
            phase = start + index * stagger
            intervals = []
            begin = phase
            while begin < horizon:
                intervals.append((begin, begin + outage))
                begin += period
            downtime[node] = intervals
        return cls(base=base, downtime=downtime)

    def is_down(self, node: int, time: float) -> bool:
        for start, end in self.downtime.get(node, ()):
            if start <= time < end:
                return True
        return False

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        if self.is_down(src, send_time) or self.is_down(dst, send_time):
            return None
        return self.base.delay(send_time, src, dst, message)


@dataclass
class ScriptedPolicy(DelayPolicy):
    """Consume per-message fates from an explicit script.

    ``script`` maps ``(src, dst, type_name, occurrence_index)`` to a
    delay or ``None`` (drop).  Unscripted messages fall through to
    ``base``.  Deterministic by construction; used in regression tests
    that pin exact interleavings.
    """

    base: DelayPolicy
    script: dict[tuple[int, int, str, int], float | None]
    _seen: dict[tuple[int, int, str], int] = field(default_factory=dict)

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        key3 = (src, dst, type(message).__name__)
        index = self._seen.get(key3, 0)
        self._seen[key3] = index + 1
        key = (*key3, index)
        if key in self.script:
            return self.script[key]
        return self.base.delay(send_time, src, dst, message)
