"""Wall-clock asyncio transport for the same node state machines.

The protocol nodes in this library are transport-agnostic: they
implement ``start(ctx)`` / ``receive(sender, message)`` and act only
through their context.  The discrete-event harness drives them in
virtual time; this module drives the *identical objects* over asyncio
queues and real wall-clock timers — the shape a socket-based deployment
would take, minus serialization.

This is the "implement Multi-shot TetraBFT and evaluate it" direction
the paper's conclusion points at, scaled to what a library can ship:
an in-process cluster with per-link latency injection, useful for
latency-realistic demos and for convincing yourself no node accidentally
depends on simulated time.

Usage::

    cluster = AsyncioCluster(link_delay=0.005)
    for i in range(4):
        cluster.add_node(TetraBFTNode(i, config, initial_value=f"v{i}"))
    asyncio.run(cluster.run(duration=0.2))
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.collectors import RunMetrics
from repro.sim.runner import SimNode
from repro.sim.trace import Trace, TraceKind


class _AsyncTimerHandle:
    """Duck-typed EventHandle over an asyncio task."""

    def __init__(self, task: asyncio.Task) -> None:
        self._task = task

    def cancel(self) -> None:
        self._task.cancel()

    @property
    def cancelled(self) -> bool:
        return self._task.cancelled()


@dataclass
class _Outbound:
    src: int
    dst: int
    message: object


class AsyncNodeContext:
    """Duck-typed :class:`~repro.sim.runner.NodeContext` over asyncio."""

    def __init__(self, node_id: int, cluster: "AsyncioCluster") -> None:
        self.node_id = node_id
        self._cluster = cluster

    @property
    def now(self) -> float:
        return self._cluster.now

    def send(self, dst: int, message: object) -> None:
        self._cluster._enqueue(_Outbound(self.node_id, dst, message))

    def broadcast(self, message: object) -> None:
        for dst in self._cluster.node_ids:
            self.send(dst, message)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> _AsyncTimerHandle:
        async def fire() -> None:
            await asyncio.sleep(delay * self._cluster.time_scale)
            self._cluster._deliver_timer(callback)

        task = self._cluster._spawn(fire())
        return _AsyncTimerHandle(task)

    # -- milestone reporting (same surface as the simulated context) ----------

    def report_decision(self, value: object) -> None:
        self._cluster.metrics.latency.record_decision(self.node_id, value, self.now)
        self.trace(TraceKind.DECIDE, value=value)

    def report_view_entry(self, view: int) -> None:
        self._cluster.metrics.latency.record_view_entry(self.node_id, view, self.now)
        self.trace(TraceKind.VIEW_ENTER, view=view)

    def report_storage(self, size_bytes: int) -> None:
        self._cluster.metrics.storage.record(self.node_id, size_bytes)

    def trace(self, kind: TraceKind, **detail: object) -> None:
        self._cluster.trace.record(self.now, self.node_id, kind, **detail)


@dataclass
class AsyncioCluster:
    """An in-process cluster of SimNodes over asyncio.

    ``link_delay`` is the wall-clock per-message latency in seconds;
    ``time_scale`` converts the protocol's Δ-denominated timers into
    wall-clock seconds (set it to ``link_delay`` so one protocol delay
    unit ≈ one link delay, matching the simulated geometry).
    """

    link_delay: float = 0.005
    time_scale: float | None = None
    metrics: RunMetrics = field(default_factory=RunMetrics)
    trace: Trace = field(default_factory=lambda: Trace(enabled=True))

    def __post_init__(self) -> None:
        if self.time_scale is None:
            self.time_scale = self.link_delay
        if self.time_scale <= 0:
            raise ConfigurationError(
                f"time_scale must be positive, got {self.time_scale} "
                "(time_scale defaults to link_delay; pass link_delay > 0 "
                "or an explicit positive time_scale)"
            )
        self._nodes: dict[int, SimNode] = {}
        self._tasks: set[asyncio.Task] = set()
        self._queue: asyncio.Queue[_Outbound] | None = None
        self._loop_time0 = 0.0
        self._running = False

    # -- wiring -----------------------------------------------------------------

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    @property
    def now(self) -> float:
        if not self._running:
            return 0.0
        elapsed = asyncio.get_event_loop().time() - self._loop_time0
        return elapsed / self.time_scale  # in protocol delay units

    def add_node(self, node: SimNode) -> None:
        if self._running:
            raise SimulationError("cannot add nodes after the cluster started")
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def _enqueue(self, outbound: _Outbound) -> None:
        assert self._queue is not None
        self.metrics.messages.record_send(outbound.src, outbound.message)
        self._queue.put_nowait(outbound)

    def _deliver_timer(self, callback: Callable[[], None]) -> None:
        callback()

    # -- run loop ------------------------------------------------------------------

    async def _router(self) -> None:
        assert self._queue is not None
        while True:
            outbound = await self._queue.get()

            async def deliver(o: _Outbound = outbound) -> None:
                await asyncio.sleep(self.link_delay)
                self.metrics.messages.record_delivery(o.src)
                node = self._nodes.get(o.dst)
                if node is not None:
                    node.receive(o.src, o.message)

            self._spawn(deliver())

    async def run(
        self,
        duration: float | None = None,
        stop_when: Callable[[], bool] | None = None,
        poll_interval: float = 0.002,
    ) -> float:
        """Start every node and run for ``duration`` seconds (or until
        ``stop_when``).  Returns elapsed protocol-delay units."""
        if self._running:
            raise SimulationError("cluster already running")
        self._running = True
        self._queue = asyncio.Queue()
        loop = asyncio.get_event_loop()
        self._loop_time0 = loop.time()
        router = self._spawn(self._router())
        for node_id in self.node_ids:
            self._nodes[node_id].start(AsyncNodeContext(node_id, self))
        try:
            deadline = None if duration is None else loop.time() + duration
            while True:
                if stop_when is not None and stop_when():
                    break
                if deadline is not None and loop.time() >= deadline:
                    break
                if deadline is None and stop_when is None:
                    break
                await asyncio.sleep(poll_interval)
        finally:
            router.cancel()
            for task in list(self._tasks):
                task.cancel()
            self._running = False
        return (loop.time() - self._loop_time0) / self.time_scale

    async def run_until_all_decided(
        self, node_ids: list[int] | None = None, timeout: float = 5.0
    ) -> float:
        targets = node_ids if node_ids is not None else self.node_ids
        return await self.run(
            duration=timeout,
            stop_when=lambda: self.metrics.latency.all_decided(targets),
        )
