"""Structured execution traces.

Every simulation can optionally record a trace of salient protocol
events (sends, deliveries, votes, decisions, view changes).  Traces are
what the Figure 1 lemma-chain experiment and several integration tests
assert over, and they make failed property-based tests diagnosable:
hypothesis shrinks to a seed, the seed replays to an identical trace.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from enum import Enum


class TraceKind(str, Enum):
    """Category tags for trace events."""

    SEND = "send"
    DELIVER = "deliver"
    DROP = "drop"
    PROPOSE = "propose"
    VOTE = "vote"
    DECIDE = "decide"
    VIEW_CHANGE_SENT = "view_change_sent"
    VIEW_ENTER = "view_enter"
    TIMER = "timer"
    NOTARIZE = "notarize"
    FINALIZE = "finalize"
    CUSTOM = "custom"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``detail`` is free-form but conventionally a dict of scalars so
    traces print readably and diff cleanly.
    """

    time: float
    node: int
    kind: TraceKind
    detail: tuple[tuple[str, object], ...]

    def get(self, key: str, default: object = None) -> object:
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        details = ", ".join(f"{k}={v}" for k, v in self.detail)
        return f"[t={self.time:8.2f}] node {self.node}: {self.kind.value} {details}"


class Trace:
    """Append-only event log with simple query helpers.

    ``enabled`` doubles as the hot-path gate: :meth:`record` is a no-op
    when disabled, and performance-sensitive callers (the network's
    broadcast path, the node context) check ``trace.enabled`` *before*
    building the keyword detail dict, so a disabled trace costs one
    attribute read per candidate event rather than a call with packed
    kwargs.
    """

    __slots__ = ("enabled", "_events")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []

    def record(self, time: float, node: int, kind: TraceKind, **detail: object) -> None:
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(time=time, node=node, kind=kind, detail=tuple(detail.items()))
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: TraceKind | None = None,
        node: int | None = None,
        where: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Filtered view of the trace."""
        result = []
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            if node is not None and event.node != node:
                continue
            if where is not None and not where(event):
                continue
            result.append(event)
        return result

    def first(
        self, kind: TraceKind, where: Callable[[TraceEvent], bool] | None = None
    ) -> TraceEvent | None:
        for event in self._events:
            if event.kind is kind and (where is None or where(event)):
                return event
        return None

    def dump(self) -> str:  # pragma: no cover - debugging aid
        return "\n".join(str(e) for e in self._events)
