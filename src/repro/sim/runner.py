"""Simulation harness: wires node state machines to the network.

Protocol implementations in this library are transport-agnostic event
machines implementing :class:`SimNode`.  The harness hands each node a
:class:`NodeContext` carrying everything a node may do to the outside
world: read the clock, send/broadcast messages, arm and cancel timers,
and report protocol milestones (decisions, view entries) to the metric
collectors.

Keeping all side effects behind the context has two payoffs: the state
machines are trivially unit-testable with a fake context, and a future
socket-based transport only needs to reimplement this one class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.collectors import RunMetrics
from repro.sim.events import EventHandle, EventScheduler
from repro.sim.network import DelayPolicy, Network, SynchronousDelays
from repro.sim.trace import Trace, TraceKind


class NodeContext:
    """The capabilities a node receives from the harness."""

    __slots__ = ("node_id", "_sim", "_timer_label")

    def __init__(self, node_id: int, simulation: "Simulation") -> None:
        self.node_id = node_id
        self._sim = simulation
        self._timer_label = f"timer node={node_id}"

    @property
    def now(self) -> float:
        return self._sim.scheduler.now

    def send(self, dst: int, message: object) -> None:
        self._sim.network.send(self.node_id, dst, message)

    def broadcast(self, message: object) -> None:
        self._sim.network.broadcast(self.node_id, message)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        return self._sim.scheduler.schedule(delay, callback, label=self._timer_label)

    # -- milestone reporting ---------------------------------------------------

    def report_decision(self, value: object) -> None:
        self._sim.metrics.latency.record_decision(self.node_id, value, self.now)
        self.trace(TraceKind.DECIDE, value=value)

    def report_view_entry(self, view: int) -> None:
        self._sim.metrics.latency.record_view_entry(self.node_id, view, self.now)
        self.trace(TraceKind.VIEW_ENTER, view=view)

    def report_storage(self, size_bytes: int) -> None:
        self._sim.metrics.storage.record(self.node_id, size_bytes)

    def trace(self, kind: TraceKind, **detail: object) -> None:
        trace = self._sim.trace
        if trace.enabled:
            trace.record(self.now, self.node_id, kind, **detail)


class SimNode(ABC):
    """Interface every simulated node implements."""

    node_id: int

    @abstractmethod
    def start(self, ctx: NodeContext) -> None:
        """Called once at simulation start; store ``ctx`` and kick off."""

    @abstractmethod
    def receive(self, sender: int, message: object) -> None:
        """Deliver one message from an authenticated channel."""


class Simulation:
    """One protocol run: scheduler + network + nodes + collectors."""

    def __init__(
        self,
        policy: DelayPolicy | None = None,
        trace_enabled: bool = False,
    ) -> None:
        self.scheduler = EventScheduler()
        self.metrics = RunMetrics()
        self.trace = Trace(enabled=trace_enabled)
        self.network = Network(
            self.scheduler,
            policy if policy is not None else SynchronousDelays(),
            metrics=self.metrics.messages,
            trace=self.trace,
        )
        self.nodes: dict[int, SimNode] = {}
        self._started = False

    def add_node(self, node: SimNode) -> None:
        if self._started:
            raise SimulationError("cannot add nodes after the simulation started")
        if node.node_id in self.nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node
        self.network.register(node.node_id, node.receive)

    def add_nodes(self, nodes: list[SimNode]) -> None:
        for node in nodes:
            self.add_node(node)

    def start(self) -> None:
        """Start every node (in id order, at t=0)."""
        if self._started:
            raise SimulationError("simulation already started")
        self._started = True
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            node.start(NodeContext(node_id, self))

    def run(
        self,
        until: float | None = None,
        max_events: int = 2_000_000,
        stop_when: Callable[[], bool] | None = None,
        stop_check_interval: int = 1,
    ) -> float:
        """Start (if needed) and drive the event loop.  Returns stop time.

        ``stop_check_interval`` is forwarded to
        :meth:`EventScheduler.run`: the ``stop_when`` predicate is
        polled every k fired events instead of after every single one.
        The default of 1 keeps exact stop timing; large-n scaling runs
        pass a bigger k so an O(n) predicate stops dominating the loop.
        """
        if not self._started:
            self.start()
        return self.scheduler.run(
            until=until,
            max_events=max_events,
            stop_when=stop_when,
            stop_check_interval=stop_check_interval,
        )

    def run_until_all_decided(
        self,
        node_ids: list[int] | None = None,
        until: float | None = None,
        max_events: int = 2_000_000,
        exclude: Iterable[int] = (),
        stop_check_interval: int = 1,
    ) -> float:
        """Run until every target node has decided.

        Targets are ``node_ids`` when given, otherwise every registered
        node *except* those in ``exclude``.  Adversarial or crashed
        nodes never decide, so runs that include them would spin until
        the event budget: pass them in ``exclude`` (or list the correct
        nodes explicitly in ``node_ids``) to stop as soon as every
        well-behaved node has decided.
        """
        excluded = frozenset(exclude)
        if node_ids is not None:
            if excluded:
                raise ConfigurationError(
                    "pass either node_ids or exclude, not both: node_ids "
                    "already names the exact targets"
                )
            targets = list(node_ids)
        else:
            targets = [node for node in sorted(self.nodes) if node not in excluded]
        return self.run(
            until=until,
            max_events=max_events,
            stop_when=lambda: self.metrics.latency.all_decided(targets),
            stop_check_interval=stop_check_interval,
        )
