"""Partially synchronous network model.

Section 2 of the paper: the network is asynchronous until an unknown
Global Stabilization Time (GST); messages sent before GST may be lost;
every message sent after GST is delivered within a known bound Δ.
Channels are authenticated — a receiver always knows the true sender —
but message *content* is unauthenticated, which is the whole setting of
the paper.

:class:`Network` routes messages between registered nodes through an
:class:`EventScheduler`.  Per-message delays and drops are decided by a
:class:`DelayPolicy`; the library ships the policies the experiments
need and :mod:`repro.sim.adversary` adds adversarial ones.

Shipped policies:

* :class:`SynchronousDelays` — every message takes exactly Δ;
* :class:`UniformRandomDelays` — i.i.d. delays in ``[low, high]``;
* :class:`PartialSynchronyPolicy` — the paper's GST/Δ model;
* :class:`GeoLatencyPolicy` — a region-to-region latency matrix with
  optional seeded jitter, for geo-distributed deployment scenarios in
  the scaling evaluation.

The hot path (``Network.broadcast``) consults the policy once per
destination but schedules every delivery as a shared bound method with
an ``args`` tuple — no per-message closure — computes the message's
wire size once per broadcast rather than once per copy, and skips trace
bookkeeping entirely when tracing is disabled.

Same-tick deliveries are *coalesced*: destinations that share a delay
ride one heap event (:meth:`Network._deliver_many`) that fans out to
their inboxes in sorted-id order — exactly the order n individual
delivery events would have fired in, since equal-time events fire in
insertion order and the broadcast loop visits destinations sorted.  The
scheduler is credited one logical event per collapsed delivery, so
``events_fired`` keeps counting logical deliveries while the heap only
carries one entry per (broadcast, delay) group.  Under
:class:`SynchronousDelays` with tracing off the per-destination policy
loop is skipped entirely (the delay is a constant), which is what
carries the event core past the roadmap's 1M events/sec floor.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.collectors import MessageMetrics
from repro.sim.events import EventScheduler
from repro.sim.trace import Trace, TraceKind

DeliverFn = Callable[[int, object], None]


class DelayPolicy(ABC):
    """Decides the fate of each message: a delay, or ``None`` to drop."""

    @abstractmethod
    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        """Return the network delay for this message, or ``None`` to drop it."""


@dataclass
class SynchronousDelays(DelayPolicy):
    """Every message takes exactly ``delta`` — the good-case network.

    With ``delta=1.0`` the simulation clock *is* the paper's
    message-delay count, which is how the Table 1 latencies are
    measured.
    """

    delta: float = 1.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        del send_time, src, dst, message
        return self.delta


@dataclass
class UniformRandomDelays(DelayPolicy):
    """Delays drawn uniformly from ``[low, high]`` with a seeded RNG."""

    low: float
    high: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ConfigurationError(f"need 0 < low <= high, got low={self.low} high={self.high}")
        self._rng = random.Random(self.seed)

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        del send_time, src, dst, message
        return self._rng.uniform(self.low, self.high)


@dataclass
class PartialSynchronyPolicy(DelayPolicy):
    """The paper's GST/Δ model.

    Before ``gst``: each message is dropped with probability
    ``loss_before_gst``, otherwise delayed by a random amount up to
    ``max_delay_before_gst`` (but never delivered before GST+jitter if
    ``defer_to_gst`` is set, modelling full asynchrony).

    At or after ``gst``: delivered within ``[delta_min, delta]``.
    ``delta`` is the known bound Δ; ``delta_min`` lets experiments
    model the *actual* delay δ ≤ Δ that responsive protocols enjoy.
    """

    gst: float
    delta: float = 1.0
    delta_min: float | None = None
    loss_before_gst: float = 0.5
    max_delay_before_gst: float = 20.0
    defer_to_gst: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.delta_min is None:
            self.delta_min = self.delta
        if self.delta_min <= 0:
            raise ConfigurationError(f"delta_min must be positive, got {self.delta_min}")
        if self.delta_min > self.delta:
            raise ConfigurationError(
                f"delta_min cannot exceed delta, got {self.delta_min} > {self.delta}"
            )
        if not 0.0 <= self.loss_before_gst <= 1.0:
            raise ConfigurationError("loss_before_gst must be a probability")
        self._rng = random.Random(self.seed)

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        del src, dst, message
        if send_time >= self.gst:
            if self.delta_min == self.delta:
                return self.delta
            return self._rng.uniform(self.delta_min, self.delta)
        if self._rng.random() < self.loss_before_gst:
            return None
        raw = self._rng.uniform(0.0, self.max_delay_before_gst)
        if self.defer_to_gst:
            # Deliver no earlier than GST: the network is genuinely
            # asynchronous before stabilization.
            earliest = self.gst - send_time
            return max(raw, earliest + self._rng.uniform(0.0, self.delta))
        return raw


@dataclass
class GeoLatencyPolicy(DelayPolicy):
    """Region-to-region latency matrix for geo-distributed scenarios.

    ``region_of`` maps node ids to region names; ``latency`` maps
    ``(src_region, dst_region)`` pairs to a base one-way delay.  Pairs
    absent from the matrix are looked up in reverse (links are
    symmetric unless both directions are given) and fall back to
    ``default``.  Intra-region traffic — a pair mapping a region to
    itself — is typically much cheaper than cross-continent links,
    which is the asymmetry this policy exists to model.

    ``jitter`` adds a uniformly distributed extra delay in
    ``[0, jitter]`` from a seeded RNG, so runs remain deterministic per
    seed.  All delays must stay within ``(0, delta_cap]`` when a cap is
    given, letting experiments assert the post-GST Δ bound still holds
    in the geo scenario (a matrix entry above the cap is a
    configuration error, caught eagerly).
    """

    region_of: Mapping[int, str]
    latency: Mapping[tuple[str, str], float]
    default: float = 1.0
    jitter: float = 0.0
    delta_cap: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.default <= 0:
            raise ConfigurationError(f"default latency must be positive, got {self.default}")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be non-negative, got {self.jitter}")
        for pair, value in self.latency.items():
            if value <= 0:
                raise ConfigurationError(f"latency for {pair} must be positive, got {value}")
        if self.delta_cap is not None:
            worst = max(self.latency.values(), default=self.default)
            worst = max(worst, self.default) + self.jitter
            if worst > self.delta_cap:
                raise ConfigurationError(
                    f"worst-case delay {worst} exceeds delta_cap {self.delta_cap}"
                )
        self._rng = random.Random(self.seed)

    def _base(self, src_region: str, dst_region: str) -> float:
        value = self.latency.get((src_region, dst_region))
        if value is None:
            value = self.latency.get((dst_region, src_region))
        return self.default if value is None else value

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        del send_time, message
        src_region = self.region_of.get(src, "")
        dst_region = self.region_of.get(dst, "")
        base = self._base(src_region, dst_region)
        if self.jitter:
            return base + self._rng.uniform(0.0, self.jitter)
        return base


class Network:
    """Message router over the event scheduler.

    Nodes are registered with a delivery callback; :meth:`send` and
    :meth:`broadcast` route through the delay policy and record
    metrics and trace events.  Self-delivery goes through the policy
    like any other link: a node processes its own broadcast when its
    peers do, which keeps measured latencies aligned with the paper's
    sequential message-delay accounting (and costs nothing where a
    quorum is needed anyway, since the quorum's messages take just as
    long).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        policy: DelayPolicy,
        metrics: MessageMetrics | None = None,
        trace: Trace | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.policy = policy
        self.metrics = metrics if metrics is not None else MessageMetrics()
        self.trace = trace if trace is not None else Trace(enabled=False)
        self._inboxes: dict[int, DeliverFn] = {}
        self._sorted_ids: list[int] = []
        # Always-on frame/message accounting (plain ints: cheap enough
        # to keep even when byte metrics are disabled).  A frame is one
        # physical envelope on one link; a message is one logical
        # protocol message carried — envelopes report their payload
        # count via ``logical_count()``.
        self.frames_sent = 0
        self.messages_sent = 0

    def register(self, node_id: int, deliver: DeliverFn) -> None:
        if node_id in self._inboxes:
            raise SimulationError(f"node {node_id} registered twice")
        self._inboxes[node_id] = deliver
        self._sorted_ids = sorted(self._inboxes)

    @property
    def node_ids(self) -> list[int]:
        return list(self._sorted_ids)

    def send(self, src: int, dst: int, message: object) -> None:
        """Send ``message`` from ``src`` to ``dst`` through the policy."""
        if dst not in self._inboxes:
            raise SimulationError(f"unknown destination node {dst}")
        count_fn = getattr(message, "logical_count", None)
        self.frames_sent += 1
        self.messages_sent += 1 if count_fn is None else count_fn()
        now = self.scheduler.now
        metrics = self.metrics
        trace_on = self.trace.enabled
        if metrics.enabled:
            metrics.record_send(src, message)
        if trace_on:
            self.trace.record(now, src, TraceKind.SEND, dst=dst, msg=type(message).__name__)
        delay = self.policy.delay(now, src, dst, message)
        if delay is None:
            if metrics.enabled:
                metrics.record_drop(src)
            if trace_on:
                self.trace.record(now, src, TraceKind.DROP, dst=dst, msg=type(message).__name__)
            return
        self.scheduler.schedule(delay, self._deliver, args=(src, dst, message))

    def broadcast(self, src: int, message: object) -> None:
        """Send ``message`` to every registered node, including ``src``.

        The paper's broadcasts include the sender (a node processes its
        own votes), so loop-back delivery is part of the semantics.

        This is the simulator's hottest path — an n-node vote round
        costs n broadcasts — so it amortizes per-message work: one
        wire-size estimate for all n copies, one policy lookup per
        destination, and no closure allocation (deliveries share the
        bound :meth:`_deliver` with an ``args`` tuple).  Destinations
        are visited in sorted-id order, so a stateful policy consumes
        randomness in exactly the order n individual sends would —
        traces and metrics are bit-identical to the unbatched path.
        """
        scheduler = self.scheduler
        dsts = self._sorted_ids
        n = len(dsts)
        count_fn = getattr(message, "logical_count", None)
        self.frames_sent += n
        self.messages_sent += n if count_fn is None else count_fn() * n
        policy = self.policy
        metrics = self.metrics
        metrics_on = metrics.enabled
        trace = self.trace
        trace_on = trace.enabled
        if metrics_on:
            metrics.record_broadcast(src, message, n)
        schedule = scheduler.schedule
        if not trace_on and type(policy) is SynchronousDelays:
            # Constant delay, no per-destination bookkeeping: the whole
            # broadcast is one heap event.
            schedule(policy.delta, self._deliver_many, args=(src, dsts, message))
            return
        now = scheduler.now
        policy_delay = policy.delay
        msg_name = type(message).__name__ if trace_on else ""
        groups: dict[float, list[int]] = {}
        for dst in dsts:
            if trace_on:
                trace.record(now, src, TraceKind.SEND, dst=dst, msg=msg_name)
            delay = policy_delay(now, src, dst, message)
            if delay is None:
                if metrics_on:
                    metrics.record_drop(src)
                if trace_on:
                    trace.record(now, src, TraceKind.DROP, dst=dst, msg=msg_name)
                continue
            group = groups.get(delay)
            if group is None:
                groups[delay] = [dst]
            else:
                group.append(dst)
        # One event per distinct delay, scheduled in first-occurrence
        # order.  Destinations inside a group fan out in sorted order,
        # matching the firing order of the equal-time events they
        # replace; events at distinct delays are ordered by time alone.
        for delay, group in groups.items():
            if len(group) == 1:
                schedule(delay, self._deliver, args=(src, group[0], message))
            else:
                schedule(delay, self._deliver_many, args=(src, group, message))

    def _deliver(self, src: int, dst: int, message: object) -> None:
        if self.metrics.enabled:
            self.metrics.record_delivery(src)
        if self.trace.enabled:
            self.trace.record(
                self.scheduler.now, dst, TraceKind.DELIVER,
                src=src, msg=type(message).__name__,
            )
        self._inboxes[dst](src, message)

    def _deliver_many(self, src: int, dsts: list[int], message: object) -> None:
        """Fan one coalesced delivery event out to many inboxes.

        Credits the scheduler with the deliveries this event collapsed
        so ``events_fired`` still counts logical deliveries.
        """
        self.scheduler.credit_events(len(dsts) - 1)
        inboxes = self._inboxes
        metrics = self.metrics
        trace = self.trace
        if metrics.enabled or trace.enabled:
            now = self.scheduler.now
            msg_name = type(message).__name__
            record_delivery = metrics.record_delivery
            for dst in dsts:
                if metrics.enabled:
                    record_delivery(src)
                if trace.enabled:
                    trace.record(now, dst, TraceKind.DELIVER, src=src, msg=msg_name)
                inboxes[dst](src, message)
        else:
            for dst in dsts:
                inboxes[dst](src, message)
