"""Partially synchronous network model.

Section 2 of the paper: the network is asynchronous until an unknown
Global Stabilization Time (GST); messages sent before GST may be lost;
every message sent after GST is delivered within a known bound Δ.
Channels are authenticated — a receiver always knows the true sender —
but message *content* is unauthenticated, which is the whole setting of
the paper.

:class:`Network` routes messages between registered nodes through an
:class:`EventScheduler`.  Per-message delays and drops are decided by a
:class:`DelayPolicy`; the library ships the policies the experiments
need and :mod:`repro.sim.adversary` adds adversarial ones.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.collectors import MessageMetrics
from repro.sim.events import EventScheduler
from repro.sim.trace import Trace, TraceKind

DeliverFn = Callable[[int, object], None]


class DelayPolicy(ABC):
    """Decides the fate of each message: a delay, or ``None`` to drop."""

    @abstractmethod
    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        """Return the network delay for this message, or ``None`` to drop it."""


@dataclass
class SynchronousDelays(DelayPolicy):
    """Every message takes exactly ``delta`` — the good-case network.

    With ``delta=1.0`` the simulation clock *is* the paper's
    message-delay count, which is how the Table 1 latencies are
    measured.
    """

    delta: float = 1.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        del send_time, src, dst, message
        return self.delta


@dataclass
class UniformRandomDelays(DelayPolicy):
    """Delays drawn uniformly from ``[low, high]`` with a seeded RNG."""

    low: float
    high: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ConfigurationError(
                f"need 0 < low <= high, got low={self.low} high={self.high}"
            )
        self._rng = random.Random(self.seed)

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        del send_time, src, dst, message
        return self._rng.uniform(self.low, self.high)


@dataclass
class PartialSynchronyPolicy(DelayPolicy):
    """The paper's GST/Δ model.

    Before ``gst``: each message is dropped with probability
    ``loss_before_gst``, otherwise delayed by a random amount up to
    ``max_delay_before_gst`` (but never delivered before GST+jitter if
    ``defer_to_gst`` is set, modelling full asynchrony).

    At or after ``gst``: delivered within ``[delta_min, delta]``.
    ``delta`` is the known bound Δ; ``delta_min`` lets experiments
    model the *actual* delay δ ≤ Δ that responsive protocols enjoy.
    """

    gst: float
    delta: float = 1.0
    delta_min: float | None = None
    loss_before_gst: float = 0.5
    max_delay_before_gst: float = 20.0
    defer_to_gst: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.delta_min is None:
            self.delta_min = self.delta
        if not 0 < self.delta_min <= self.delta:
            raise ConfigurationError(
                f"need 0 < delta_min <= delta, got {self.delta_min} > {self.delta}"
            )
        if not 0.0 <= self.loss_before_gst <= 1.0:
            raise ConfigurationError("loss_before_gst must be a probability")
        self._rng = random.Random(self.seed)

    def delay(self, send_time: float, src: int, dst: int, message: object) -> float | None:
        del src, dst, message
        if send_time >= self.gst:
            if self.delta_min == self.delta:
                return self.delta
            return self._rng.uniform(self.delta_min, self.delta)
        if self._rng.random() < self.loss_before_gst:
            return None
        raw = self._rng.uniform(0.0, self.max_delay_before_gst)
        if self.defer_to_gst:
            # Deliver no earlier than GST: the network is genuinely
            # asynchronous before stabilization.
            earliest = self.gst - send_time
            return max(raw, earliest + self._rng.uniform(0.0, self.delta))
        return raw


class Network:
    """Message router over the event scheduler.

    Nodes are registered with a delivery callback; :meth:`send` and
    :meth:`broadcast` route through the delay policy and record
    metrics and trace events.  Self-delivery goes through the policy
    like any other link: a node processes its own broadcast when its
    peers do, which keeps measured latencies aligned with the paper's
    sequential message-delay accounting (and costs nothing where a
    quorum is needed anyway, since the quorum's messages take just as
    long).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        policy: DelayPolicy,
        metrics: MessageMetrics | None = None,
        trace: Trace | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.policy = policy
        self.metrics = metrics if metrics is not None else MessageMetrics()
        self.trace = trace if trace is not None else Trace(enabled=False)
        self._inboxes: dict[int, DeliverFn] = {}

    def register(self, node_id: int, deliver: DeliverFn) -> None:
        if node_id in self._inboxes:
            raise SimulationError(f"node {node_id} registered twice")
        self._inboxes[node_id] = deliver

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._inboxes)

    def send(self, src: int, dst: int, message: object) -> None:
        """Send ``message`` from ``src`` to ``dst`` through the policy."""
        if dst not in self._inboxes:
            raise SimulationError(f"unknown destination node {dst}")
        self.metrics.record_send(src, message)
        self.trace.record(
            self.scheduler.now, src, TraceKind.SEND,
            dst=dst, msg=type(message).__name__,
        )
        delay = self.policy.delay(self.scheduler.now, src, dst, message)
        if delay is None:
            self.metrics.record_drop(src)
            self.trace.record(
                self.scheduler.now, src, TraceKind.DROP,
                dst=dst, msg=type(message).__name__,
            )
            return
        self.scheduler.schedule(
            delay,
            lambda: self._deliver(src, dst, message),
            label=f"deliver {type(message).__name__} {src}->{dst}",
        )

    def broadcast(self, src: int, message: object) -> None:
        """Send ``message`` to every registered node, including ``src``.

        The paper's broadcasts include the sender (a node processes its
        own votes), so loop-back delivery is part of the semantics.
        """
        for dst in self.node_ids:
            self.send(src, dst, message)

    def _deliver(self, src: int, dst: int, message: object) -> None:
        self.metrics.record_delivery(src)
        self.trace.record(
            self.scheduler.now, dst, TraceKind.DELIVER,
            src=src, msg=type(message).__name__,
        )
        self._inboxes[dst](src, message)
