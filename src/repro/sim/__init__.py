"""Discrete-event simulation substrate (scheduler, network, adversaries)."""

from repro.sim.adversary import (
    CrashRecoveryPolicy,
    PartitionPolicy,
    ScriptedPolicy,
    SkewedDelays,
    TargetedDropPolicy,
    censor_types,
    silence_nodes,
)
from repro.sim.events import EventHandle, EventScheduler
from repro.sim.network import (
    DelayPolicy,
    GeoLatencyPolicy,
    Network,
    PartialSynchronyPolicy,
    SynchronousDelays,
    UniformRandomDelays,
)
from repro.sim.runner import NodeContext, SimNode, Simulation
from repro.sim.trace import Trace, TraceEvent, TraceKind

__all__ = [
    "CrashRecoveryPolicy",
    "DelayPolicy",
    "EventHandle",
    "EventScheduler",
    "GeoLatencyPolicy",
    "Network",
    "NodeContext",
    "PartialSynchronyPolicy",
    "PartitionPolicy",
    "ScriptedPolicy",
    "SimNode",
    "Simulation",
    "SkewedDelays",
    "SynchronousDelays",
    "TargetedDropPolicy",
    "Trace",
    "TraceEvent",
    "TraceKind",
    "UniformRandomDelays",
    "censor_types",
    "silence_nodes",
]
