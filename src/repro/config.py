"""The typed process-wide configuration surface (``REPRO_*`` env vars).

Every behavioural escape hatch used to be a private ``os.environ``
lookup buried in the module it toggled — batching in
:mod:`repro.multishot.batching`, the delayed flush and the uvloop
switch in :mod:`repro.net.transport`, the heavy-grid flag in each
``eval`` CLI.  That sprawl made the knob set unenumerable: nothing
stated which variables existed, which spellings counted as "on", or
what the defaults were.  :class:`ReproConfig` is the one typed answer.

Design constraints, in order:

* **The old env vars are the interface.**  Every knob keeps its
  historical name and its historical parse, byte for byte — a value
  that toggled a flag before this module existed toggles it
  identically now (equivalence-tested in ``tests/test_repro_config``).
* **Read once, revalidated cheaply.**  :func:`repro_config` parses the
  environment once and caches the frozen result; the cache is keyed on
  a fingerprint of the raw variable values, so in-process env mutation
  (the ablation harness swapping arms, tests monkeypatching) is picked
  up without re-parsing on every call.  Replica subprocesses are
  spawned fresh and parse their inherited environment independently.
* **Knobs, not wiring.**  Structural parameters (ports, peer tables,
  cluster shape) stay in the explicit spec/config dataclasses; this
  surface carries only the cross-cutting behavioural switches.

The durability knobs (``REPRO_DATA_DIR`` / ``REPRO_WAL_FSYNC_WINDOW``
/ ``REPRO_SNAPSHOT_INTERVAL``) are new in this module: they default the
:class:`~repro.storage.DiskStorage` parameters when a deployment opts
into persistence without threading explicit values through.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Seconds one WAL group commit may hold appended records before the
#: write+fsync — the durability window a crash can lose (the recovery
#: path tolerates the torn tail this produces).
DEFAULT_WAL_FSYNC_WINDOW = 0.005

#: Finalized blocks between state snapshots (each snapshot compacts
#: the WAL below its frontier).
DEFAULT_SNAPSHOT_INTERVAL = 32

#: Raw variables the config is parsed from, fingerprint order.
_ENV_KEYS = (
    "REPRO_NO_BATCH",
    "REPRO_NO_DELAY",
    "REPRO_NO_UVLOOP",
    "REPRO_BATCH_POLICY",
    "REPRO_HEAVY",
    "REPRO_DATA_DIR",
    "REPRO_WAL_FSYNC_WINDOW",
    "REPRO_SNAPSHOT_INTERVAL",
    "REPRO_NO_OBS",
    "REPRO_EVENT_LOG",
)


def _flag(raw: str | None) -> bool:
    """The historical tri-spelling switch: ``1``/``true``/``yes`` (any
    case) is on, everything else — including unset — is off."""
    return (raw or "").lower() in ("1", "true", "yes")


@dataclass(frozen=True)
class ReproConfig:
    """One immutable snapshot of every ``REPRO_*`` behavioural knob."""

    #: ``REPRO_NO_BATCH`` — disable message-plane (and gateway
    #: submission) batching; the A/B ablation's off switch.
    no_batch: bool = False
    #: ``REPRO_NO_DELAY`` — disable the transport's delayed flush.
    no_delay: bool = False
    #: ``REPRO_NO_UVLOOP`` — force the stock asyncio loop.
    no_uvloop: bool = False
    #: ``REPRO_BATCH_POLICY`` — raw policy selector (``adaptive`` /
    #: ``fixed`` / ``fixed:<n>``); interpreted by
    #: :func:`repro.multishot.batching.batch_policy_from_env`.
    batch_policy: str = ""
    #: ``REPRO_HEAVY`` — truthy string enables the full bench grids
    #: (historically any non-empty value, not the flag spelling).
    heavy: bool = False
    #: ``REPRO_DATA_DIR`` — default per-process durability root; when
    #: unset, replicas run with :class:`~repro.storage.MemoryStorage`.
    data_dir: str | None = None
    #: ``REPRO_WAL_FSYNC_WINDOW`` — WAL group-commit window, seconds.
    wal_fsync_window: float = DEFAULT_WAL_FSYNC_WINDOW
    #: ``REPRO_SNAPSHOT_INTERVAL`` — finalized blocks per snapshot.
    snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL
    #: ``REPRO_NO_OBS`` — disable observability *sampling*: structured
    #: event recording and commit-path trace sampling go quiet.  The
    #: metrics registry's plain counters stay on (the collect/scrape
    #: wire payloads are built from them); this is the do-no-harm arm.
    no_obs: bool = False
    #: ``REPRO_EVENT_LOG`` — stream every structured event to an NDJSON
    #: file under the replica's data dir (or ``REPRO_DATA_DIR``) as it
    #: happens, instead of only keeping the in-memory ring buffer.
    event_log: bool = False

    @classmethod
    def from_env(cls, env: os._Environ | dict[str, str] = os.environ) -> "ReproConfig":
        """Parse one snapshot; each knob keeps its historical parse."""
        raw_window = env.get("REPRO_WAL_FSYNC_WINDOW", "")
        try:
            window = float(raw_window) if raw_window else DEFAULT_WAL_FSYNC_WINDOW
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WAL_FSYNC_WINDOW={raw_window!r}: needs a float (seconds)"
            ) from None
        raw_interval = env.get("REPRO_SNAPSHOT_INTERVAL", "")
        try:
            interval = int(raw_interval) if raw_interval else DEFAULT_SNAPSHOT_INTERVAL
        except ValueError:
            raise ConfigurationError(
                f"REPRO_SNAPSHOT_INTERVAL={raw_interval!r}: needs an integer (blocks)"
            ) from None
        if window < 0:
            raise ConfigurationError(f"wal_fsync_window must be >= 0, got {window}")
        if interval < 1:
            raise ConfigurationError(f"snapshot_interval must be >= 1, got {interval}")
        return cls(
            no_batch=_flag(env.get("REPRO_NO_BATCH")),
            no_delay=_flag(env.get("REPRO_NO_DELAY")),
            no_uvloop=_flag(env.get("REPRO_NO_UVLOOP")),
            batch_policy=env.get("REPRO_BATCH_POLICY", ""),
            heavy=bool(env.get("REPRO_HEAVY")),
            data_dir=env.get("REPRO_DATA_DIR") or None,
            wal_fsync_window=window,
            snapshot_interval=interval,
            no_obs=_flag(env.get("REPRO_NO_OBS")),
            event_log=_flag(env.get("REPRO_EVENT_LOG")),
        )


_CACHE: tuple[tuple[str | None, ...], ReproConfig] | None = None


def repro_config() -> ReproConfig:
    """The process's current :class:`ReproConfig`, cached.

    The cache is invalidated by comparing the raw values of every
    :data:`_ENV_KEYS` variable — a tuple compare per call — so callers
    may treat this as "read once" while tests and the ablation harness
    keep mutating ``os.environ`` mid-process.
    """
    global _CACHE
    fingerprint = tuple(os.environ.get(key) for key in _ENV_KEYS)
    if _CACHE is None or _CACHE[0] != fingerprint:
        _CACHE = (fingerprint, ReproConfig.from_env())
    return _CACHE[1]
